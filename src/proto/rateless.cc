#include "proto/rateless.h"

#include <optional>
#include <vector>

#include "erasure/gf256.h"
#include "erasure/matrix.h"
#include "proto/layout.h"
#include "util/check.h"
#include "util/rng.h"

namespace lrs::proto {

namespace {

std::uint64_t coeff_seed(std::uint64_t base, std::uint32_t page,
                         std::uint32_t index) {
  std::uint64_t z = base ^ (static_cast<std::uint64_t>(page) << 32) ^ index;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic coefficient row for encoded packet (page, index):
/// systematic for index < k, pseudorandom dense GF(256) otherwise.
Bytes coefficient_row(std::uint64_t seed, std::size_t k, std::uint32_t page,
                      std::uint32_t index) {
  Bytes row(k, 0);
  if (index < k) {
    row[index] = 1;
    return row;
  }
  Rng rng(coeff_seed(seed, page, index));
  bool nonzero = false;
  do {
    for (auto& c : row) {
      c = static_cast<std::uint8_t>(rng.uniform(256));
      nonzero = nonzero || c != 0;
    }
  } while (!nonzero);
  return row;
}

/// Rateless service: a requester asking for d more packets is satisfied by
/// ANY d fresh combinations, and one fresh packet serves every concurrent
/// requester at once — so the outstanding demand is the max, not the sum.
class FreshScheduler final : public TxScheduler {
 public:
  explicit FreshScheduler(std::size_t window) : window_(window) {}

  void on_snack(NodeId, const BitVec& requested, std::size_t needed) override {
    LRS_CHECK(requested.size() == window_);
    pending_ = std::max(pending_, needed);
  }

  std::optional<std::uint32_t> next_packet() override {
    if (pending_ == 0) return std::nullopt;
    --pending_;
    const std::uint32_t idx = next_;
    next_ = (next_ + 1) % static_cast<std::uint32_t>(window_);
    return idx;
  }

  void on_overheard_data(std::uint32_t) override {
    if (pending_ > 0) --pending_;
  }

  void set_start(std::uint32_t index) override {
    next_ = index % static_cast<std::uint32_t>(window_);
  }

  bool idle() const override { return pending_ == 0; }
  std::size_t backlog() const override { return pending_; }

 private:
  std::size_t window_;
  std::size_t pending_ = 0;
  std::uint32_t next_ = 0;
};

class RatelessState final : public SchemeState {
 public:
  RatelessState(const CommonParams& params, std::size_t image_size)
      : params_(params),
        layout_(compute_layout(image_size, page_capacity(), page_capacity())),
        pages_(layout_.content_pages) {
    reset_collection();
  }

  RatelessState(const CommonParams& params, const Bytes& image)
      : RatelessState(params, image.size()) {
    for (std::size_t p = 1; p <= layout_.content_pages; ++p) {
      const Bytes slice = page_slice(view(image), layout_, p);
      pages_[p - 1] = split_fixed(view(slice), params_.payload_size,
                                  params_.k);
    }
    complete_pages_ = static_cast<std::uint32_t>(layout_.content_pages);
  }

  Version version() const override { return params_.version; }
  std::uint32_t num_pages() const override {
    return static_cast<std::uint32_t>(layout_.content_pages);
  }
  std::size_t packets_in_page(std::uint32_t) const override {
    return window();
  }
  std::size_t decode_threshold(std::uint32_t) const override {
    return params_.k;
  }

  std::uint32_t pages_complete() const override { return complete_pages_; }
  bool image_complete() const override {
    return complete_pages_ == layout_.content_pages;
  }

  Bytes assemble_image() const override {
    LRS_CHECK_MSG(image_complete(), "image not complete yet");
    Bytes image(layout_.image_size, 0);
    for (std::size_t p = 1; p <= layout_.content_pages; ++p) {
      Bytes slice;
      for (const auto& block : pages_[p - 1])
        slice.insert(slice.end(), block.begin(), block.end());
      slice.resize(p < layout_.content_pages ? layout_.mid_capacity
                                             : layout_.last_capacity);
      place_slice(image, layout_, p, view(slice));
    }
    return image;
  }

  BitVec request_bits(std::uint32_t page) const override {
    BitVec bits(window());
    if (page != complete_pages_ || page >= pages_.size()) return bits;
    for (std::size_t j = 0; j < window(); ++j) {
      if (!have_.get(j)) bits.set(j);
    }
    return bits;
  }

  std::size_t buffered_packets() const override {
    if (image_complete()) return 0;
    std::size_t n = 0;
    for (std::size_t j = 0; j < window(); ++j) n += have_.get(j);
    return n;
  }

  void on_reboot() override {
    // Decoded pages persist; the partial elimination state is RAM.
    if (!image_complete()) reset_collection();
  }

  DataStatus on_data(std::uint32_t page, std::uint32_t index,
                     ByteView payload, sim::NodeMetrics& m) override {
    if (page != complete_pages_ || page >= pages_.size()) {
      return DataStatus::kStale;
    }
    if (index >= window() || payload.size() != params_.payload_size) {
      return DataStatus::kRejected;
    }
    if (have_.get(index)) return DataStatus::kStale;
    have_.set(index);
    // NO authentication: any well-formed combination enters the decoder —
    // exactly the exposure LR-Seluge eliminates.
    const Bytes row =
        coefficient_row(params_.code_seed, params_.k, page + 1, index);
    const bool innovative = eliminator_->add(view(row), payload);
    if (!innovative) return DataStatus::kStale;
    if (eliminator_->complete()) {
      m.decode_operations += 1;
      pages_[page] = eliminator_->solve();
      ++complete_pages_;
      reset_collection();
      return image_complete() ? DataStatus::kImageComplete
                              : DataStatus::kPageComplete;
    }
    return DataStatus::kStored;
  }

  bool verify_stored_packet(std::uint32_t page, std::uint32_t index,
                            ByteView payload,
                            sim::NodeMetrics&) const override {
    return page < complete_pages_ && index < window() &&
           payload.size() == params_.payload_size;
  }

  bool needs_signature() const override { return false; }
  bool bootstrapped() const override { return true; }
  bool on_signature(ByteView, sim::NodeMetrics&) override { return false; }
  std::optional<Bytes> signature_frame() const override {
    return std::nullopt;
  }

  std::optional<Bytes> packet_payload(std::uint32_t page,
                                      std::uint32_t index) override {
    if (page >= complete_pages_ || index >= window()) return std::nullopt;
    const auto& blocks = pages_[page];
    if (index < params_.k) return blocks[index];
    const Bytes row =
        coefficient_row(params_.code_seed, params_.k, page + 1, index);
    Bytes out(params_.payload_size, 0);
    for (std::size_t j = 0; j < params_.k; ++j) {
      erasure::Gf256::addmul(MutByteView(out.data(), out.size()),
                             view(blocks[j]), row[j]);
    }
    return out;
  }

  std::unique_ptr<TxScheduler> make_scheduler(
      std::uint32_t) const override {
    return std::make_unique<FreshScheduler>(window());
  }

 private:
  std::size_t page_capacity() const {
    return params_.k * params_.payload_size;
  }
  std::size_t window() const { return kRatelessWindowFactor * params_.k; }

  void reset_collection() {
    eliminator_ = std::make_unique<erasure::Gf256Eliminator>(
        params_.k, params_.payload_size);
    have_ = BitVec(window());
  }

  CommonParams params_;
  PageLayout layout_;
  std::vector<std::vector<Bytes>> pages_;  // decoded blocks per page
  std::unique_ptr<erasure::Gf256Eliminator> eliminator_;
  BitVec have_;
  std::uint32_t complete_pages_ = 0;
};

}  // namespace

std::unique_ptr<SchemeState> make_rateless_source(const CommonParams& params,
                                                  const Bytes& image) {
  return std::make_unique<RatelessState>(params, image);
}

std::unique_ptr<SchemeState> make_rateless_receiver(
    const CommonParams& params, std::size_t image_size) {
  return std::make_unique<RatelessState>(params, image_size);
}

}  // namespace lrs::proto
