// Seluge (Hyun, Ning, Liu & Du, IPSN'08): the secure ARQ baseline.
//
// Deluge's page-by-page transfer, hardened exactly as the paper describes
// (§II-B): the hash of packet (i+1, j) is embedded in packet (i, j); the
// first content page is authenticated through a hash page under a Merkle
// tree whose root the base station signs; the signature packet carries a
// message-specific puzzle so forged signature packets are filtered with one
// hash instead of a signature verification.
//
// Every data packet is authenticated immediately on arrival — but a lost
// packet must be retransmitted until every receiver holds precisely that
// packet, which is what makes Seluge degrade in lossy channels.
#pragma once

#include <memory>

#include "crypto/hash.h"
#include "crypto/wots.h"
#include "proto/params.h"
#include "proto/scheme.h"

namespace lrs::proto {

/// Base-station side: preprocesses `image` and signs the Merkle root with
/// `signer` (consumes one one-time key).
std::unique_ptr<SchemeState> make_seluge_source(const CommonParams& params,
                                                const Bytes& image,
                                                crypto::MultiKeySigner& signer);

/// Receiver side: only the preloaded verification root; geometry arrives in
/// the signed metadata.
std::unique_ptr<SchemeState> make_seluge_receiver(
    const CommonParams& params, const crypto::PacketHash& root_public_key);

}  // namespace lrs::proto
