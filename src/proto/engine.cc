#include "proto/engine.h"

#include <algorithm>

#include "util/check.h"
#include "util/log.h"

namespace lrs::proto {

using sim::SimTime;

DissemNode::DissemNode(sim::Env& env, std::unique_ptr<SchemeState> scheme,
                       EngineConfig config, Bytes cluster_key)
    : sim::Node(env),
      scheme_(std::move(scheme)),
      cfg_(config),
      cluster_key_(std::move(cluster_key)),
      trickle_(cfg_.timing.trickle, &env.rng()) {
  LRS_CHECK(scheme_ != nullptr);
  if (!cluster_key_.empty()) cluster_mac_.emplace(view(cluster_key_));
}

const crypto::HmacKey* DissemNode::snack_tx_mac() {
  if (cfg_.leap_snack_auth) {
    if (!leap_tx_mac_) {
      leap_tx_mac_.emplace(
          view(leap_source_key(view(cfg_.leap_master), env().id())));
    }
    return &*leap_tx_mac_;
  }
  return cluster_mac_ ? &*cluster_mac_ : nullptr;
}

const crypto::HmacKey& DissemNode::snack_rx_mac(NodeId sender) {
  auto it = leap_rx_macs_.find(sender);
  if (it == leap_rx_macs_.end()) {
    const Bytes key = leap_source_key(view(cfg_.leap_master), sender);
    it = leap_rx_macs_.emplace(sender, crypto::HmacKey(view(key))).first;
  }
  return it->second;
}

SimTime DissemNode::rand_delay(SimTime max) {
  if (max <= 0) return 0;
  return static_cast<SimTime>(
      env().rng().uniform(static_cast<std::uint64_t>(max)));
}

void DissemNode::set_state(NodeState next) {
  if (next == state_) return;
  const NodeState prev = state_;
  state_ = next;
  if (auto* o = env().observer()) {
    o->on_state_transition(env().now(), env().id(), static_cast<int>(prev),
                           static_cast<int>(next));
  }
}

void DissemNode::note_auth_failure(sim::PacketClass cls) {
  if (auto* o = env().observer()) {
    o->on_auth_failure(env().now(), env().id(), cls);
  }
}

void DissemNode::on_start() {
  if (cfg_.is_base_station) {
    if (scheme_->image_complete()) env().notify_complete();
    if (scheme_->signature_frame().has_value()) {
      env().schedule(cfg_.timing.signature_boot_delay, [this] {
        maybe_broadcast_signature();
      });
    }
  }
  trickle_restart();
}

void DissemNode::on_reboot() {
  // A watchdog reset: the scheme drops its volatile page buffer (the
  // persisted frontier survives inside it), and every timer, session and
  // neighbor table is gone with the RAM.
  scheme_->on_reboot();
  reset_protocol_state();
  trickle_restart();
  consider_rx();
}

// --------------------------------------------------------------------------
// Advertisements / Trickle
// --------------------------------------------------------------------------

void DissemNode::trickle_restart() {
  trickle_.reset(env().now());
  arm_adv_fire();
}

void DissemNode::arm_adv_fire() {
  env().cancel(adv_token_);
  adv_token_ = env().schedule(trickle_.fire_time() - env().now(),
                              [this] { on_adv_fire(); });
}

void DissemNode::on_adv_fire() {
  if (trickle_.should_broadcast()) send_advertisement();
  env().cancel(adv_token_);
  const SimTime wait = std::max<SimTime>(0, trickle_.interval_end() - env().now());
  adv_token_ = env().schedule(wait, [this] { on_adv_interval_end(); });
}

void DissemNode::on_adv_interval_end() {
  trickle_.next_interval(env().now());
  arm_adv_fire();
}

void DissemNode::send_advertisement() {
  Advertisement adv;
  adv.version = scheme_->version();
  adv.sender = env().id();
  adv.pages_complete = scheme_->pages_complete();
  adv.bootstrapped = scheme_->bootstrapped();
  env().broadcast(sim::PacketClass::kAdvertisement,
                  cluster_mac_ ? adv.serialize(*cluster_mac_)
                               : adv.serialize(ByteView{}));
}

// --------------------------------------------------------------------------
// Frame dispatch
// --------------------------------------------------------------------------

void DissemNode::on_receive(ByteView frame) {
  const auto type = peek_type(frame);
  if (!type) return;
  switch (*type) {
    case PacketType::kAdvertisement: {
      auto adv = cluster_mac_ ? Advertisement::parse(frame, *cluster_mac_)
                              : Advertisement::parse(frame, ByteView{});
      if (!adv) {
        env().metrics().auth_failures += 1;
        note_auth_failure(sim::PacketClass::kAdvertisement);
        return;
      }
      if (adv->version != scheme_->version()) {
        // A neighbor runs a NEWER image: fetch its signature packet to
        // verify and adopt it (never move backwards).
        if (cfg_.scheme_factory && adv->version > scheme_->version() &&
            adv->bootstrapped) {
          trickle_restart();
          request_signature_from(adv->sender, adv->version);
        }
        return;
      }
      handle_advertisement(*adv);
      return;
    }
    case PacketType::kSnack: {
      // Under LEAP-style auth the MAC key is the claimed sender's own key,
      // so a verified SNACK also authenticates WHO sent it.
      std::optional<Snack> snack;
      if (cfg_.leap_snack_auth) {
        const auto sender = Snack::peek_sender(frame);
        if (!sender) return;
        snack = Snack::parse(frame, snack_rx_mac(*sender));
      } else if (cluster_mac_) {
        snack = Snack::parse(frame, *cluster_mac_);
      } else {
        snack = Snack::parse(frame, ByteView{});
      }
      if (!snack || snack->version != scheme_->version()) {
        if (!snack) {
          env().metrics().auth_failures += 1;
          note_auth_failure(sim::PacketClass::kSnack);
        }
        return;
      }
      handle_snack(*snack);
      return;
    }
    case PacketType::kData: {
      auto data = DataPacket::parse(frame);
      if (!data || data->version != scheme_->version()) return;
      handle_data(*data);
      return;
    }
    case PacketType::kSignature:
      handle_signature_frame(frame);
      return;
  }
}

// --------------------------------------------------------------------------
// Advertisement handling
// --------------------------------------------------------------------------

void DissemNode::handle_advertisement(const Advertisement& adv) {
  auto& info = neighbors_[adv.sender];
  info.pages_complete = adv.pages_complete;
  info.bootstrapped = adv.bootstrapped;
  info.last_heard = env().now();

  const std::uint32_t mine = scheme_->pages_complete();
  const bool consistent = adv.pages_complete == mine &&
                          adv.bootstrapped == scheme_->bootstrapped();
  if (consistent) {
    trickle_.heard_consistent();
  } else {
    trickle_restart();
  }

  if (!scheme_->bootstrapped()) {
    if (adv.bootstrapped) maybe_request_signature();
    return;
  }
  if (adv.pages_complete > mine && !scheme_->image_complete()) consider_rx();
}

// --------------------------------------------------------------------------
// RX
// --------------------------------------------------------------------------

void DissemNode::consider_rx() {
  if (state_ != NodeState::kMaintain) return;
  if (scheme_->image_complete()) return;
  if (!scheme_->bootstrapped()) {
    maybe_request_signature();
    return;
  }
  if (auto server = pick_server()) enter_rx(*server);
}

std::optional<NodeId> DissemNode::pick_server() const {
  const std::uint32_t mine = scheme_->pages_complete();
  std::optional<NodeId> best;
  std::uint32_t best_pages = mine;
  for (const auto& [id, info] : neighbors_) {
    if (info.pages_complete > best_pages) {
      best = id;
      best_pages = info.pages_complete;
    }
  }
  return best;
}

void DissemNode::enter_rx(NodeId target) {
  set_state(NodeState::kRx);
  rx_target_ = target;
  rx_retries_ = 0;
  rx_deadline_ = env().now() + cfg_.timing.max_snack_deferral;
  arm_snack(rand_delay(cfg_.timing.snack_delay_max));
}

void DissemNode::leave_rx() {
  env().cancel(rx_token_);
  rx_token_ = {};
  set_state(NodeState::kMaintain);
}

void DissemNode::arm_snack(SimTime delay) {
  // Deferrals may never push the request past the deadline; this bounds the
  // damage of duplicate/old-page replay floods (see max_snack_deferral).
  const SimTime latest = std::max<SimTime>(1, rx_deadline_ - env().now());
  env().cancel(rx_token_);
  rx_token_ = env().schedule(std::min(delay, latest),
                             [this] { send_snack(); });
}

void DissemNode::send_snack() {
  if (state_ != NodeState::kRx) return;
  if (scheme_->image_complete()) {
    leave_rx();
    return;
  }
  const std::uint32_t page = scheme_->pages_complete();
  Snack s;
  s.version = scheme_->version();
  s.sender = env().id();
  s.target = rx_target_;
  s.page = page;
  s.requested = scheme_->request_bits(page);
  const crypto::HmacKey* mac = snack_tx_mac();
  env().broadcast(sim::PacketClass::kSnack,
                  mac ? s.serialize(*mac) : s.serialize(ByteView{}));

  rx_deadline_ = env().now() + cfg_.timing.max_snack_deferral;
  env().cancel(rx_token_);
  rx_token_ = env().schedule(
      cfg_.timing.snack_retry + rand_delay(cfg_.timing.snack_retry_jitter),
      [this] { on_snack_retry(); });
}

void DissemNode::on_snack_retry() {
  if (state_ != NodeState::kRx) return;
  if (scheme_->image_complete()) {
    leave_rx();
    return;
  }
  ++rx_retries_;
  if (rx_retries_ > cfg_.timing.max_snack_retries) {
    // Give up on this server; drop its stale entry and look for another.
    neighbors_.erase(rx_target_);
    leave_rx();
    trickle_restart();
    consider_rx();
    return;
  }
  send_snack();
}

// --------------------------------------------------------------------------
// TX
// --------------------------------------------------------------------------

void DissemNode::handle_snack(const Snack& snack) {
  if (snack.page == kSignatureRequestPage) {
    if (snack.target == env().id()) maybe_broadcast_signature();
    return;
  }

  if (snack.target != env().id()) {
    // A neighbor requested an EARLIER page: hold our own request back so
    // the neighborhood advances in lockstep (Deluge suppression). A
    // request for the SAME page needs no suppression — the server merges
    // concurrent requests into one burst.
    if (state_ == NodeState::kRx && rx_token_ &&
        snack.page < scheme_->pages_complete()) {
      arm_snack(cfg_.timing.lockstep_delay +
                rand_delay(cfg_.timing.snack_retry_jitter));
    }
    return;
  }

  // Addressed to us: can we serve the page?
  if (snack.page >= scheme_->pages_complete()) return;
  if (snack.requested.size() != scheme_->packets_in_page(snack.page)) return;
  if (snack.requested.none()) return;

  // Denial-of-receipt mitigation (§IV-E): cap the number of packets one
  // neighbor can make us transmit for one page.
  const std::size_t q = snack.requested.count();
  const std::size_t kprime = scheme_->decode_threshold(snack.page);
  const std::size_t npkts = scheme_->packets_in_page(snack.page);
  const std::size_t needed =
      q + kprime > npkts ? q + kprime - npkts : std::size_t{1};
  if (cfg_.dor_mitigation) {
    auto& used = dor_counters_[{snack.sender, snack.page}];
    const std::size_t limit = cfg_.dor_limit_factor * kprime;
    if (used >= limit) {
      env().metrics().snacks_ignored += 1;
      return;
    }
    used += std::min(needed, q);
  }

  LRS_LOG(kDebug) << "node " << env().id() << " snack from " << snack.sender
                  << " page " << snack.page << " q=" << q << " needed="
                  << needed << " t=" << env().now();
  begin_or_merge_tx(snack);
}

void DissemNode::begin_or_merge_tx(const Snack& snack) {
  const std::size_t q = snack.requested.count();
  const std::size_t kprime = scheme_->decode_threshold(snack.page);
  const std::size_t npkts = scheme_->packets_in_page(snack.page);
  const std::size_t needed =
      q + kprime > npkts ? q + kprime - npkts : std::size_t{1};

  auto& session = tx_sessions_[snack.page];
  if (!session) {
    session = scheme_->make_scheduler(snack.page);
    if (auto it = serve_rotation_.find(snack.page);
        it != serve_rotation_.end()) {
      session->set_start(it->second);
    }
  }
  session->on_snack(snack.sender, snack.requested, needed);

  if (state_ == NodeState::kTx) return;  // serve loop already running
  if (state_ == NodeState::kRx) {
    // Serving takes precedence; resume requesting afterwards.
    env().cancel(rx_token_);
    rx_token_ = {};
    rx_pending_resume_ = true;
  }
  set_state(NodeState::kTx);
  env().cancel(tx_token_);
  // Pool concurrent requests briefly so one burst serves them all.
  tx_token_ = env().schedule(cfg_.timing.serve_aggregation +
                                 rand_delay(cfg_.timing.data_gap),
                             [this] { serve_next(); });
}

void DissemNode::serve_next() {
  if (state_ != NodeState::kTx) return;
  // Flow control: never run ahead of the radio, or receivers re-request
  // packets that are still sitting in the MAC queue.
  if (env().pending_tx() >= 2) {
    env().cancel(tx_token_);
    tx_token_ = env().schedule(cfg_.timing.data_gap, [this] { serve_next(); });
    return;
  }
  // Drop drained sessions; always serve the lowest outstanding page
  // (Deluge priority: earlier pages unblock more neighbors).
  std::optional<std::uint32_t> idx;
  std::uint32_t page = 0;
  while (!tx_sessions_.empty()) {
    auto it = tx_sessions_.begin();
    idx = it->second->next_packet();
    if (idx) {
      page = it->first;
      break;
    }
    tx_sessions_.erase(it);
  }
  if (!idx) {
    leave_tx();
    return;
  }
  auto payload = scheme_->packet_payload(page, *idx);
  LRS_CHECK_MSG(payload.has_value(), "serving a page we do not have");
  DataPacket d;
  d.version = scheme_->version();
  d.page = page;
  d.index = *idx;
  d.payload = *std::move(payload);
  serve_rotation_[page] =
      (*idx + 1) % static_cast<std::uint32_t>(scheme_->packets_in_page(page));
  LRS_LOG(kDebug) << "node " << env().id() << " serves page " << page
                  << " idx " << d.index << " t=" << env().now();
  if (page == 0) env().metrics().page0_data_sent += 1;
  if (auto* o = env().observer()) {
    o->on_data_served(env().now(), env().id(), page, *idx);
  }
  env().broadcast(sim::PacketClass::kData, d.serialize());
  env().cancel(tx_token_);
  tx_token_ = env().schedule(cfg_.timing.data_gap, [this] { serve_next(); });
}

void DissemNode::leave_tx() {
  env().cancel(tx_token_);
  tx_token_ = {};
  tx_sessions_.clear();
  set_state(NodeState::kMaintain);
  if (rx_pending_resume_ && !scheme_->image_complete()) {
    rx_pending_resume_ = false;
    consider_rx();
  } else {
    rx_pending_resume_ = false;
  }
}

// --------------------------------------------------------------------------
// Data
// --------------------------------------------------------------------------

void DissemNode::handle_data(const DataPacket& data) {
  // TX-side data suppression: another server is covering this page.
  if (state_ == NodeState::kTx) {
    if (auto it = tx_sessions_.find(data.page); it != tx_sessions_.end()) {
      it->second->on_overheard_data(data.index);
    }
  }

  const DataStatus status =
      scheme_->on_data(data.page, data.index, view(data.payload),
                       env().metrics());
  LRS_LOG(kTrace) << "node " << env().id() << " data page " << data.page
                  << " idx " << data.index << " status "
                  << static_cast<int>(status) << " t=" << env().now();
  if (auto* o = env().observer()) {
    o->on_data_packet(env().now(), env().id(), data.page, data.index,
                      static_cast<int>(status));
    if (status == DataStatus::kRejected) {
      o->on_auth_failure(env().now(), env().id(), sim::PacketClass::kData);
    }
    if (status == DataStatus::kPageComplete ||
        status == DataStatus::kImageComplete) {
      o->on_page_complete(env().now(), env().id(), data.page,
                          scheme_->pages_complete());
    }
  }

  if (state_ == NodeState::kRx) {
    if (data.page == scheme_->pages_complete() &&
        (status == DataStatus::kStored || status == DataStatus::kStale)) {
      // The stream is flowing: plan to re-request the remainder shortly
      // after it goes quiet (losses mean the burst rarely completes us).
      arm_snack(cfg_.timing.stream_gap +
                rand_delay(cfg_.timing.stream_gap_jitter));
    } else if (data.page < scheme_->pages_complete() &&
               scheme_->verify_stored_packet(data.page, data.index,
                                             view(data.payload),
                                             env().metrics())) {
      // AUTHENTIC data for an EARLIER page: a straggling neighbor is being
      // served. Requesting our next page now would fragment the server's
      // bursts; hold back so the neighborhood advances in lockstep. Forged
      // lower-page packets fail the (one-hash) check and cause no delay.
      arm_snack(cfg_.timing.lockstep_delay +
                rand_delay(cfg_.timing.snack_retry_jitter));
    }
  }

  switch (status) {
    case DataStatus::kPageComplete:
      on_progress();
      break;
    case DataStatus::kImageComplete:
      env().notify_complete();
      on_progress();
      break;
    default:
      break;
  }
}

void DissemNode::on_progress() {
  trickle_restart();
  if (scheme_->image_complete()) {
    if (state_ == NodeState::kRx) leave_rx();
    return;
  }
  if (state_ == NodeState::kRx) {
    // Keep pulling the next page, ideally from the same server.
    rx_retries_ = 0;
    const auto it = neighbors_.find(rx_target_);
    const bool target_still_ahead =
        it != neighbors_.end() &&
        it->second.pages_complete > scheme_->pages_complete();
    if (target_still_ahead) {
      arm_snack(rand_delay(cfg_.timing.snack_delay_max));
    } else {
      leave_rx();
      consider_rx();
    }
  }
}

// --------------------------------------------------------------------------
// Signature bootstrap
// --------------------------------------------------------------------------

void DissemNode::maybe_request_signature() {
  if (scheme_->bootstrapped() || sig_request_armed_) return;
  // Need a bootstrapped neighbor to ask.
  std::optional<NodeId> target;
  for (const auto& [id, info] : neighbors_) {
    if (info.bootstrapped) {
      target = id;
      break;
    }
  }
  if (!target) return;
  request_signature_from(*target, scheme_->version());
}

void DissemNode::request_signature_from(NodeId target, Version version) {
  if (sig_request_armed_) return;
  sig_request_armed_ = true;
  env().cancel(sig_token_);
  sig_token_ = env().schedule(
      rand_delay(cfg_.timing.snack_delay_max) + 1,
      [this, target, version] {
        sig_request_armed_ = false;
        // Still behind? (Either not bootstrapped, or the newer version has
        // not been adopted yet.)
        if (scheme_->version() >= version && scheme_->bootstrapped()) return;
        Snack s;
        s.version = version;
        s.sender = env().id();
        s.target = target;
        s.page = kSignatureRequestPage;
        const crypto::HmacKey* mac = snack_tx_mac();
        env().broadcast(sim::PacketClass::kSnack,
                        mac ? s.serialize(*mac) : s.serialize(ByteView{}));
      });
}

void DissemNode::maybe_broadcast_signature() {
  auto frame = scheme_->signature_frame();
  if (!frame) return;
  if (last_sig_broadcast_ >= 0 &&
      env().now() - last_sig_broadcast_ <
          cfg_.timing.signature_rebroadcast_min_gap) {
    return;
  }
  last_sig_broadcast_ = env().now();
  env().broadcast(sim::PacketClass::kSignature, *std::move(frame));
}

void DissemNode::handle_signature_frame(ByteView frame) {
  // Upgrade path: a signature packet for a newer version replaces the
  // whole image state — but only after it verifies on a candidate built
  // from the preloaded key material. Old/equal versions never displace
  // the current image (downgrade protection).
  if (cfg_.scheme_factory) {
    const auto packet = SignaturePacket::parse(frame);
    if (packet && packet->meta.version > scheme_->version()) {
      auto candidate = cfg_.scheme_factory(packet->meta.version);
      if (candidate && candidate->on_signature(frame, env().metrics())) {
        adopt_scheme(std::move(candidate));
      }
      return;
    }
  }
  if (!scheme_->needs_signature() || scheme_->bootstrapped()) return;
  if (scheme_->on_signature(frame, env().metrics())) {
    trickle_restart();
    consider_rx();
  }
}

void DissemNode::upgrade(std::unique_ptr<SchemeState> next) {
  LRS_CHECK_MSG(next != nullptr, "upgrade needs a scheme");
  LRS_CHECK_MSG(next->version() > scheme_->version(),
                "image versions only move forward");
  adopt_scheme(std::move(next));
  if (cfg_.is_base_station && scheme_->signature_frame().has_value()) {
    last_sig_broadcast_ = -1;
    maybe_broadcast_signature();
  }
}

void DissemNode::adopt_scheme(std::unique_ptr<SchemeState> next) {
  scheme_ = std::move(next);
  reset_protocol_state();
  trickle_restart();
  consider_rx();
}

void DissemNode::reset_protocol_state() {
  env().cancel(rx_token_);
  rx_token_ = {};
  env().cancel(tx_token_);
  tx_token_ = {};
  env().cancel(sig_token_);
  sig_token_ = {};
  tx_sessions_.clear();
  set_state(NodeState::kMaintain);
  rx_pending_resume_ = false;
  rx_retries_ = 0;
  sig_request_armed_ = false;
  last_sig_broadcast_ = -1;
  neighbors_.clear();      // stale: they referred to the old version
  dor_counters_.clear();
  serve_rotation_.clear();
}

}  // namespace lrs::proto
