#include "proto/engine.h"

#include <algorithm>

#include "sim/stats/stats.h"
#include "util/check.h"
#include "util/log.h"

namespace lrs::proto {

using sim::SimTime;

DissemNode::DissemNode(sim::Env& env, std::unique_ptr<SchemeState> scheme,
                       EngineConfig config, Bytes cluster_key)
    : sim::Node(env),
      scheme_(std::move(scheme)),
      rx_memo_(config.rx_memo),
      trickle_(config.timing.trickle, &env.rng()),
      cfg_(std::move(config)),
      cluster_key_(std::move(cluster_key)) {
  LRS_CHECK(scheme_ != nullptr);
  refresh_scheme_view();
  if (!cluster_key_.empty()) cluster_mac_.emplace(view(cluster_key_));
}

void DissemNode::refresh_scheme_view() {
  version_ = scheme_->version();
  pages_complete_ = scheme_->pages_complete();
  bootstrapped_ = scheme_->bootstrapped();
  complete_ = scheme_->image_complete();
}

const crypto::HmacKey* DissemNode::snack_tx_mac() {
  if (cfg_.leap_snack_auth) {
    if (!leap_tx_mac_) {
      leap_tx_mac_.emplace(
          view(leap_source_key(view(cfg_.leap_master), env().id())));
    }
    return &*leap_tx_mac_;
  }
  return cluster_mac_ ? &*cluster_mac_ : nullptr;
}

const crypto::HmacKey& DissemNode::snack_rx_mac(NodeId sender) {
  auto it = leap_rx_macs_.find(sender);
  if (it == leap_rx_macs_.end()) {
    const Bytes key = leap_source_key(view(cfg_.leap_master), sender);
    it = leap_rx_macs_.emplace(sender, crypto::HmacKey(view(key))).first;
  }
  return it->second;
}

DissemNode::NeighborInfo& DissemNode::neighbor(NodeId id) {
  auto it = std::lower_bound(
      neighbors_.begin(), neighbors_.end(), id,
      [](const NeighborEntry& e, NodeId v) { return e.id < v; });
  if (it == neighbors_.end() || it->id != id) {
    it = neighbors_.insert(it, NeighborEntry{id, {}});
  }
  return it->info;
}

void DissemNode::forget_neighbor(NodeId id) {
  auto it = std::lower_bound(
      neighbors_.begin(), neighbors_.end(), id,
      [](const NeighborEntry& e, NodeId v) { return e.id < v; });
  if (it != neighbors_.end() && it->id == id) neighbors_.erase(it);
}

std::size_t& DissemNode::dor_counter(NodeId sender, std::uint32_t page) {
  const auto key = std::make_pair(sender, page);
  auto it = std::lower_bound(
      dor_counters_.begin(), dor_counters_.end(), key,
      [](const DorEntry& e, const std::pair<NodeId, std::uint32_t>& k) {
        return std::make_pair(e.sender, e.page) < k;
      });
  if (it == dor_counters_.end() || it->sender != sender || it->page != page) {
    it = dor_counters_.insert(it, DorEntry{sender, page, 0});
  }
  return it->used;
}

TxScheduler* DissemNode::tx_session(std::uint32_t page) {
  auto it = std::lower_bound(
      tx_sessions_.begin(), tx_sessions_.end(), page,
      [](const auto& e, std::uint32_t p) { return e.first < p; });
  if (it == tx_sessions_.end() || it->first != page) return nullptr;
  return it->second.get();
}

SimTime DissemNode::rand_delay(SimTime max) {
  if (max <= 0) return 0;
  return static_cast<SimTime>(
      env().rng().uniform(static_cast<std::uint64_t>(max)));
}

void DissemNode::set_state(NodeState next) {
  if (next == state_) return;
  const NodeState prev = state_;
  state_ = next;
  if (auto* o = env().observer()) {
    o->on_state_transition(env().now(), env().id(), static_cast<int>(prev),
                           static_cast<int>(next));
  }
}

void DissemNode::note_auth_failure(sim::PacketClass cls) {
  static stats::Counter& fails =
      stats::Registry::instance().counter("proto.auth.fail");
  fails.add();
  if (auto* o = env().observer()) {
    o->on_auth_failure(env().now(), env().id(), cls);
  }
}

void DissemNode::on_start() {
  if (cfg_.is_base_station) {
    if (complete_) env().notify_complete();
    if (scheme_->signature_frame().has_value()) {
      env().schedule(cfg_.timing.signature_boot_delay, [this] {
        maybe_broadcast_signature();
      });
    }
  }
  trickle_restart();
}

void DissemNode::on_reboot() {
  // A watchdog reset: the scheme drops its volatile page buffer (the
  // persisted frontier survives inside it), and every timer, session and
  // neighbor table is gone with the RAM.
  scheme_->on_reboot();
  refresh_scheme_view();
  reset_protocol_state();
  trickle_restart();
  consider_rx();
}

// --------------------------------------------------------------------------
// Advertisements / Trickle
// --------------------------------------------------------------------------

void DissemNode::trickle_restart() {
  trickle_.reset(env().now());
  arm_adv_fire();
}

void DissemNode::arm_adv_fire() {
  env().cancel(adv_token_);
  adv_token_ = env().schedule(trickle_.fire_time() - env().now(),
                              [this] { on_adv_fire(); });
}

void DissemNode::on_adv_fire() {
  if (trickle_.should_broadcast()) send_advertisement();
  env().cancel(adv_token_);
  const SimTime wait = std::max<SimTime>(0, trickle_.interval_end() - env().now());
  adv_token_ = env().schedule(wait, [this] { on_adv_interval_end(); });
}

void DissemNode::on_adv_interval_end() {
  trickle_.next_interval(env().now());
  arm_adv_fire();
}

void DissemNode::send_advertisement() {
  Advertisement adv;
  adv.version = version_;
  adv.sender = env().id();
  adv.pages_complete = pages_complete_;
  adv.bootstrapped = bootstrapped_;
  // The serialized frame (including its MAC) is a pure function of these
  // fields, and Trickle re-announces an unchanged state many times between
  // changes — rebuild only when the advertised state moved.
  if (adv_frame_.empty() || adv_cached_.version != adv.version ||
      adv_cached_.pages_complete != adv.pages_complete ||
      adv_cached_.bootstrapped != adv.bootstrapped) {
    adv_cached_ = adv;
    adv_frame_ = cluster_mac_ ? adv.serialize(*cluster_mac_)
                              : adv.serialize(ByteView{});
  }
  env().broadcast(sim::PacketClass::kAdvertisement, adv_frame_);
}

// --------------------------------------------------------------------------
// Frame dispatch
// --------------------------------------------------------------------------

void DissemNode::on_receive(ByteView frame) {
  // The protocol-bound hot path: everything below — parse, MAC/hash
  // verification, scheme buffering, erasure decode — bills to proto.rx
  // (inclusive of the nested crypto.*/erasure.* scopes). Frames received
  // = proto.rx.calls; authenticated ones = calls - proto.auth.fail.
  static stats::Timer& rx_timer =
      stats::Registry::instance().timer("proto.rx");
  stats::TimerScope rx_scope(rx_timer);
  const auto type = peek_type(frame);
  if (!type) return;
  // With a memo wired and a live delivery serial, the first receiver of a
  // broadcast frame parses/verifies it and the rest of the fan-out reuses
  // the outcome. All per-receiver decisions (version checks, metric
  // charges, auth-failure accounting) stay below this point.
  RxFanoutMemo* memo = rx_memo_;
  const std::uint64_t serial = memo ? env().delivery_serial() : 0;
  switch (*type) {
    case PacketType::kAdvertisement: {
      const Advertisement* adv = nullptr;
      std::optional<Advertisement> parsed;
      if (serial != 0 && memo->adv_serial == serial) {
        if (memo->adv_ok) adv = &memo->adv;
      } else {
        parsed = cluster_mac_ ? Advertisement::parse(frame, *cluster_mac_)
                              : Advertisement::parse(frame, ByteView{});
        if (serial != 0) {
          memo->adv_serial = serial;
          memo->adv_ok = parsed.has_value();
          if (parsed) memo->adv = *parsed;
        }
        if (parsed) adv = &*parsed;
      }
      if (!adv) {
        env().metrics().auth_failures += 1;
        note_auth_failure(sim::PacketClass::kAdvertisement);
        return;
      }
      if (adv->version != version_) {
        // A neighbor runs a NEWER image: fetch its signature packet to
        // verify and adopt it (never move backwards).
        if (cfg_.scheme_factory && adv->version > version_ &&
            adv->bootstrapped) {
          trickle_restart();
          request_signature_from(adv->sender, adv->version);
        }
        return;
      }
      handle_advertisement(*adv);
      return;
    }
    case PacketType::kSnack: {
      const Snack* snack = nullptr;
      std::optional<Snack> parsed;
      if (serial != 0 && memo->snack_serial == serial) {
        if (memo->snack_ok) snack = &memo->snack;
      } else {
        // Under LEAP-style auth the MAC key is the claimed sender's own
        // key, so a verified SNACK also authenticates WHO sent it. The
        // key schedule is sender-derived either way, which is what makes
        // the parse outcome shareable across receivers.
        if (cfg_.leap_snack_auth) {
          const auto sender = Snack::peek_sender(frame);
          if (!sender) return;
          parsed = Snack::parse(frame, snack_rx_mac(*sender));
        } else if (cluster_mac_) {
          parsed = Snack::parse(frame, *cluster_mac_);
        } else {
          parsed = Snack::parse(frame, ByteView{});
        }
        if (serial != 0) {
          memo->snack_serial = serial;
          memo->snack_ok = parsed.has_value();
          if (parsed) memo->snack = *parsed;
        }
        if (parsed) snack = &*parsed;
      }
      if (!snack || snack->version != version_) {
        if (!snack) {
          env().metrics().auth_failures += 1;
          note_auth_failure(sim::PacketClass::kSnack);
        }
        return;
      }
      handle_snack(*snack);
      return;
    }
    case PacketType::kData: {
      const DataPacket* data = nullptr;
      std::optional<DataPacket> parsed;
      if (serial != 0 && memo->data_serial == serial) {
        if (memo->data_ok) data = &memo->data;
      } else {
        parsed = DataPacket::parse(frame);
        if (serial != 0) {
          memo->data_serial = serial;
          memo->data_ok = parsed.has_value();
          if (parsed) memo->data = *parsed;
        }
        if (parsed) data = &*parsed;
      }
      if (!data || data->version != version_) return;
      handle_data(*data, serial);
      return;
    }
    case PacketType::kSignature:
      handle_signature_frame(frame);
      return;
  }
}

// --------------------------------------------------------------------------
// Advertisement handling
// --------------------------------------------------------------------------

void DissemNode::handle_advertisement(const Advertisement& adv) {
  auto& info = neighbor(adv.sender);
  info.pages_complete = adv.pages_complete;
  info.bootstrapped = adv.bootstrapped;
  info.last_heard = env().now();

  const std::uint32_t mine = pages_complete_;
  const bool consistent = adv.pages_complete == mine &&
                          adv.bootstrapped == bootstrapped_;
  if (consistent) {
    trickle_.heard_consistent();
  } else {
    trickle_restart();
  }

  if (!bootstrapped_) {
    if (adv.bootstrapped) maybe_request_signature();
    return;
  }
  if (adv.pages_complete > mine && !complete_) consider_rx();
}

// --------------------------------------------------------------------------
// RX
// --------------------------------------------------------------------------

void DissemNode::consider_rx() {
  if (state_ != NodeState::kMaintain) return;
  if (complete_) return;
  if (!bootstrapped_) {
    maybe_request_signature();
    return;
  }
  if (auto server = pick_server()) enter_rx(*server);
}

std::optional<NodeId> DissemNode::pick_server() const {
  const std::uint32_t mine = pages_complete_;
  std::optional<NodeId> best;
  std::uint32_t best_pages = mine;
  for (const auto& e : neighbors_) {
    if (e.info.pages_complete > best_pages) {
      best = e.id;
      best_pages = e.info.pages_complete;
    }
  }
  return best;
}

void DissemNode::enter_rx(NodeId target) {
  set_state(NodeState::kRx);
  rx_target_ = target;
  rx_retries_ = 0;
  rx_deadline_ = env().now() + cfg_.timing.max_snack_deferral;
  arm_snack(rand_delay(cfg_.timing.snack_delay_max));
}

void DissemNode::leave_rx() {
  env().cancel(rx_token_);
  rx_token_ = {};
  set_state(NodeState::kMaintain);
}

void DissemNode::arm_snack(SimTime delay) {
  // Deferrals may never push the request past the deadline; this bounds the
  // damage of duplicate/old-page replay floods (see max_snack_deferral).
  const SimTime latest = std::max<SimTime>(1, rx_deadline_ - env().now());
  env().cancel(rx_token_);
  rx_token_ = env().schedule(std::min(delay, latest),
                             [this] { send_snack(); });
}

void DissemNode::send_snack() {
  if (state_ != NodeState::kRx) return;
  if (complete_) {
    leave_rx();
    return;
  }
  const std::uint32_t page = pages_complete_;
  Snack s;
  s.version = version_;
  s.sender = env().id();
  s.target = rx_target_;
  s.page = page;
  s.requested = scheme_->request_bits(page);
  const crypto::HmacKey* mac = snack_tx_mac();
  static stats::Counter& snacks =
      stats::Registry::instance().counter("proto.snack.sent");
  snacks.add();
  env().broadcast(sim::PacketClass::kSnack,
                  mac ? s.serialize(*mac) : s.serialize(ByteView{}));

  rx_deadline_ = env().now() + cfg_.timing.max_snack_deferral;
  env().cancel(rx_token_);
  rx_token_ = env().schedule(
      cfg_.timing.snack_retry + rand_delay(cfg_.timing.snack_retry_jitter),
      [this] { on_snack_retry(); });
}

void DissemNode::on_snack_retry() {
  if (state_ != NodeState::kRx) return;
  if (complete_) {
    leave_rx();
    return;
  }
  ++rx_retries_;
  if (rx_retries_ > cfg_.timing.max_snack_retries) {
    // Give up on this server; drop its stale entry and look for another.
    forget_neighbor(rx_target_);
    leave_rx();
    trickle_restart();
    consider_rx();
    return;
  }
  send_snack();
}

// --------------------------------------------------------------------------
// TX
// --------------------------------------------------------------------------

void DissemNode::handle_snack(const Snack& snack) {
  if (snack.page == kSignatureRequestPage) {
    if (snack.target == env().id()) maybe_broadcast_signature();
    return;
  }

  if (snack.target != env().id()) {
    // A neighbor requested an EARLIER page: hold our own request back so
    // the neighborhood advances in lockstep (Deluge suppression). A
    // request for the SAME page needs no suppression — the server merges
    // concurrent requests into one burst.
    if (state_ == NodeState::kRx && rx_token_ &&
        snack.page < pages_complete_) {
      arm_snack(cfg_.timing.lockstep_delay +
                rand_delay(cfg_.timing.snack_retry_jitter));
    }
    return;
  }

  // Addressed to us: can we serve the page?
  if (snack.page >= pages_complete_) return;
  if (snack.requested.size() != scheme_->packets_in_page(snack.page)) return;
  if (snack.requested.none()) return;

  // Denial-of-receipt mitigation (§IV-E): cap the number of packets one
  // neighbor can make us transmit for one page.
  const std::size_t q = snack.requested.count();
  const std::size_t kprime = scheme_->decode_threshold(snack.page);
  const std::size_t npkts = scheme_->packets_in_page(snack.page);
  const std::size_t needed =
      q + kprime > npkts ? q + kprime - npkts : std::size_t{1};
  if (cfg_.dor_mitigation) {
    auto& used = dor_counter(snack.sender, snack.page);
    const std::size_t limit = cfg_.dor_limit_factor * kprime;
    if (used >= limit) {
      env().metrics().snacks_ignored += 1;
      return;
    }
    used += std::min(needed, q);
  }

  LRS_LOG(kDebug) << "node " << env().id() << " snack from " << snack.sender
                  << " page " << snack.page << " q=" << q << " needed="
                  << needed << " t=" << env().now();
  begin_or_merge_tx(snack);
}

void DissemNode::begin_or_merge_tx(const Snack& snack) {
  const std::size_t q = snack.requested.count();
  const std::size_t kprime = scheme_->decode_threshold(snack.page);
  const std::size_t npkts = scheme_->packets_in_page(snack.page);
  const std::size_t needed =
      q + kprime > npkts ? q + kprime - npkts : std::size_t{1};

  TxScheduler* session = tx_session(snack.page);
  if (session == nullptr) {
    auto it = std::lower_bound(
        tx_sessions_.begin(), tx_sessions_.end(), snack.page,
        [](const auto& e, std::uint32_t p) { return e.first < p; });
    it = tx_sessions_.emplace(it, snack.page,
                              scheme_->make_scheduler(snack.page));
    session = it->second.get();
    const auto rot = std::lower_bound(
        serve_rotation_.begin(), serve_rotation_.end(), snack.page,
        [](const auto& e, std::uint32_t p) { return e.first < p; });
    if (rot != serve_rotation_.end() && rot->first == snack.page) {
      session->set_start(rot->second);
    }
  }
  session->on_snack(snack.sender, snack.requested, needed);

  if (state_ == NodeState::kTx) return;  // serve loop already running
  if (state_ == NodeState::kRx) {
    // Serving takes precedence; resume requesting afterwards.
    env().cancel(rx_token_);
    rx_token_ = {};
    rx_pending_resume_ = true;
  }
  set_state(NodeState::kTx);
  env().cancel(tx_token_);
  // Pool concurrent requests briefly so one burst serves them all.
  tx_token_ = env().schedule(cfg_.timing.serve_aggregation +
                                 rand_delay(cfg_.timing.data_gap),
                             [this] { serve_next(); });
}

void DissemNode::serve_next() {
  if (state_ != NodeState::kTx) return;
  // Flow control: never run ahead of the radio, or receivers re-request
  // packets that are still sitting in the MAC queue.
  if (env().pending_tx() >= 2) {
    env().cancel(tx_token_);
    tx_token_ = env().schedule(cfg_.timing.data_gap, [this] { serve_next(); });
    return;
  }
  // Drop drained sessions; always serve the lowest outstanding page
  // (Deluge priority: earlier pages unblock more neighbors).
  std::optional<std::uint32_t> idx;
  std::uint32_t page = 0;
  while (!tx_sessions_.empty()) {
    auto it = tx_sessions_.begin();  // lowest page: vector sorted by page
    idx = it->second->next_packet();
    if (idx) {
      page = it->first;
      break;
    }
    tx_sessions_.erase(it);
  }
  if (!idx) {
    leave_tx();
    return;
  }
  auto payload = scheme_->packet_payload(page, *idx);
  LRS_CHECK_MSG(payload.has_value(), "serving a page we do not have");
  DataPacket d;
  d.version = version_;
  d.page = page;
  d.index = *idx;
  d.payload = *std::move(payload);
  const std::uint32_t next_rot =
      (*idx + 1) % static_cast<std::uint32_t>(scheme_->packets_in_page(page));
  auto rot = std::lower_bound(
      serve_rotation_.begin(), serve_rotation_.end(), page,
      [](const auto& e, std::uint32_t p) { return e.first < p; });
  if (rot != serve_rotation_.end() && rot->first == page) {
    rot->second = next_rot;
  } else {
    serve_rotation_.emplace(rot, page, next_rot);
  }
  LRS_LOG(kDebug) << "node " << env().id() << " serves page " << page
                  << " idx " << d.index << " t=" << env().now();
  if (page == 0) env().metrics().page0_data_sent += 1;
  static stats::Counter& served =
      stats::Registry::instance().counter("proto.data.served");
  served.add();
  if (auto* o = env().observer()) {
    o->on_data_served(env().now(), env().id(), page, *idx);
  }
  env().broadcast(sim::PacketClass::kData, d.serialize());
  env().cancel(tx_token_);
  tx_token_ = env().schedule(cfg_.timing.data_gap, [this] { serve_next(); });
}

void DissemNode::leave_tx() {
  env().cancel(tx_token_);
  tx_token_ = {};
  tx_sessions_.clear();
  set_state(NodeState::kMaintain);
  if (rx_pending_resume_ && !complete_) {
    rx_pending_resume_ = false;
    consider_rx();
  } else {
    rx_pending_resume_ = false;
  }
}

// --------------------------------------------------------------------------
// Data
// --------------------------------------------------------------------------

void DissemNode::handle_data(const DataPacket& data, std::uint64_t serial) {
  // TX-side data suppression: another server is covering this page.
  if (state_ == NodeState::kTx) {
    if (TxScheduler* session = tx_session(data.page)) {
      session->on_overheard_data(data.index);
    }
  }

  // Share the packet-content digest across this delivery's fan-out: the
  // engine owns the serial bookkeeping, the scheme fills/reuses the digest.
  RxDigestMemo* dig = nullptr;
  if (serial != 0) {
    RxFanoutMemo& m = *rx_memo_;
    if (m.digest_serial != serial) {
      m.digest_serial = serial;
      m.digest.valid = false;
    }
    dig = &m.digest;
  }

  const DataStatus status =
      scheme_->on_data(data.page, data.index, view(data.payload),
                       env().metrics(), dig);
  if (status == DataStatus::kPageComplete ||
      status == DataStatus::kImageComplete) {
    refresh_scheme_view();
  }
  LRS_LOG(kTrace) << "node " << env().id() << " data page " << data.page
                  << " idx " << data.index << " status "
                  << static_cast<int>(status) << " t=" << env().now();
  if (auto* o = env().observer()) {
    o->on_data_packet(env().now(), env().id(), data.page, data.index,
                      static_cast<int>(status));
    if (status == DataStatus::kRejected) {
      o->on_auth_failure(env().now(), env().id(), sim::PacketClass::kData);
    }
    if (status == DataStatus::kPageComplete ||
        status == DataStatus::kImageComplete) {
      o->on_page_complete(env().now(), env().id(), data.page,
                          pages_complete_);
    }
  }

  if (state_ == NodeState::kRx) {
    if (data.page == pages_complete_ &&
        (status == DataStatus::kStored || status == DataStatus::kStale)) {
      // The stream is flowing: plan to re-request the remainder shortly
      // after it goes quiet (losses mean the burst rarely completes us).
      arm_snack(cfg_.timing.stream_gap +
                rand_delay(cfg_.timing.stream_gap_jitter));
    } else if (data.page < pages_complete_ &&
               scheme_->verify_stored_packet(data.page, data.index,
                                             view(data.payload),
                                             env().metrics(), dig)) {
      // AUTHENTIC data for an EARLIER page: a straggling neighbor is being
      // served. Requesting our next page now would fragment the server's
      // bursts; hold back so the neighborhood advances in lockstep. Forged
      // lower-page packets fail the (one-hash) check and cause no delay.
      arm_snack(cfg_.timing.lockstep_delay +
                rand_delay(cfg_.timing.snack_retry_jitter));
    }
  }

  switch (status) {
    case DataStatus::kPageComplete:
      on_progress();
      break;
    case DataStatus::kImageComplete:
      env().notify_complete();
      on_progress();
      break;
    default:
      break;
  }
}

void DissemNode::on_progress() {
  trickle_restart();
  if (complete_) {
    if (state_ == NodeState::kRx) leave_rx();
    return;
  }
  if (state_ == NodeState::kRx) {
    // Keep pulling the next page, ideally from the same server.
    rx_retries_ = 0;
    const auto it = std::lower_bound(
        neighbors_.begin(), neighbors_.end(), rx_target_,
        [](const NeighborEntry& e, NodeId v) { return e.id < v; });
    const bool target_still_ahead =
        it != neighbors_.end() && it->id == rx_target_ &&
        it->info.pages_complete > pages_complete_;
    if (target_still_ahead) {
      arm_snack(rand_delay(cfg_.timing.snack_delay_max));
    } else {
      leave_rx();
      consider_rx();
    }
  }
}

// --------------------------------------------------------------------------
// Signature bootstrap
// --------------------------------------------------------------------------

void DissemNode::maybe_request_signature() {
  if (bootstrapped_ || sig_request_armed_) return;
  // Need a bootstrapped neighbor to ask. Walk the candidates in
  // first-heard order, but skip ahead one candidate for every
  // kSigTargetRotate requests that have gone unanswered: the first-heard
  // neighbor can sit behind a link too weak to carry the request or the
  // reply, and asking only it would strand the node (liveness, not just
  // latency — the advertisement that registered it may be the only frame
  // that link ever delivers).
  std::uint32_t bootstrapped = 0;
  for (const auto& e : neighbors_) bootstrapped += e.info.bootstrapped;
  if (bootstrapped == 0) return;
  std::uint32_t skip =
      (sig_requests_unanswered_ / kSigTargetRotate) % bootstrapped;
  std::optional<NodeId> target;
  for (const auto& e : neighbors_) {
    if (!e.info.bootstrapped) continue;
    if (skip > 0) {
      --skip;
      continue;
    }
    target = e.id;
    break;
  }
  request_signature_from(*target, version_);
}

void DissemNode::request_signature_from(NodeId target, Version version) {
  if (sig_request_armed_) return;
  sig_request_armed_ = true;
  env().cancel(sig_token_);
  sig_token_ = env().schedule(
      rand_delay(cfg_.timing.snack_delay_max) + 1,
      [this, target, version] {
        sig_request_armed_ = false;
        // Still behind? (Either not bootstrapped, or the newer version has
        // not been adopted yet.)
        if (version_ >= version && bootstrapped_) return;
        ++sig_requests_unanswered_;
        Snack s;
        s.version = version;
        s.sender = env().id();
        s.target = target;
        s.page = kSignatureRequestPage;
        const crypto::HmacKey* mac = snack_tx_mac();
        env().broadcast(sim::PacketClass::kSnack,
                        mac ? s.serialize(*mac) : s.serialize(ByteView{}));
      });
}

void DissemNode::maybe_broadcast_signature() {
  auto frame = scheme_->signature_frame();
  if (!frame) return;
  if (last_sig_broadcast_ >= 0 &&
      env().now() - last_sig_broadcast_ <
          cfg_.timing.signature_rebroadcast_min_gap) {
    return;
  }
  last_sig_broadcast_ = env().now();
  env().broadcast(sim::PacketClass::kSignature, *std::move(frame));
}

void DissemNode::handle_signature_frame(ByteView frame) {
  // Upgrade path: a signature packet for a newer version replaces the
  // whole image state — but only after it verifies on a candidate built
  // from the preloaded key material. Old/equal versions never displace
  // the current image (downgrade protection).
  if (cfg_.scheme_factory) {
    const auto packet = SignaturePacket::parse(frame);
    if (packet && packet->meta.version > version_) {
      auto candidate = cfg_.scheme_factory(packet->meta.version);
      if (candidate && candidate->on_signature(frame, env().metrics())) {
        adopt_scheme(std::move(candidate));
      }
      return;
    }
  }
  if (!scheme_->needs_signature() || bootstrapped_) return;
  if (scheme_->on_signature(frame, env().metrics())) {
    sig_requests_unanswered_ = 0;
    refresh_scheme_view();
    trickle_restart();
    consider_rx();
  }
}

void DissemNode::upgrade(std::unique_ptr<SchemeState> next) {
  LRS_CHECK_MSG(next != nullptr, "upgrade needs a scheme");
  LRS_CHECK_MSG(next->version() > version_,
                "image versions only move forward");
  adopt_scheme(std::move(next));
  if (cfg_.is_base_station && scheme_->signature_frame().has_value()) {
    last_sig_broadcast_ = -1;
    maybe_broadcast_signature();
  }
}

void DissemNode::adopt_scheme(std::unique_ptr<SchemeState> next) {
  scheme_ = std::move(next);
  refresh_scheme_view();
  reset_protocol_state();
  trickle_restart();
  consider_rx();
}

void DissemNode::reset_protocol_state() {
  env().cancel(rx_token_);
  rx_token_ = {};
  env().cancel(tx_token_);
  tx_token_ = {};
  env().cancel(sig_token_);
  sig_token_ = {};
  tx_sessions_.clear();
  set_state(NodeState::kMaintain);
  rx_pending_resume_ = false;
  rx_retries_ = 0;
  sig_request_armed_ = false;
  last_sig_broadcast_ = -1;
  sig_requests_unanswered_ = 0;
  neighbors_.clear();      // stale: they referred to the old version
  dor_counters_.clear();
  serve_rotation_.clear();
}

}  // namespace lrs::proto
