// Page geometry shared by the three schemes.
//
// All schemes split the image into g content pages. Pages that carry
// next-page hash images (Seluge: one per packet; LR-Seluge: n per page)
// have less room for image bytes, and the last page carries no hashes —
// so the capacity differs per position. This module centralizes the math
// so the builders and the byte-accounting agree (paper §VI-B.3 relies on
// the capacity shrinking as n grows).
#pragma once

#include <cstddef>

#include "util/types.h"

namespace lrs::proto {

struct PageLayout {
  std::size_t image_size = 0;
  std::size_t content_pages = 0;   // g
  std::size_t mid_capacity = 0;    // image bytes per page 1..g-1
  std::size_t last_capacity = 0;   // image bytes in page g
};

/// Smallest g such that (g-1)*mid_capacity + last_capacity >= image_size.
PageLayout compute_layout(std::size_t image_size, std::size_t mid_capacity,
                          std::size_t last_capacity);

/// Image slice carried by content page `page` (1-based, in [1, g]),
/// zero-padded to that page's capacity.
Bytes page_slice(ByteView image, const PageLayout& layout, std::size_t page);

/// Writes a recovered slice back into its place; trailing padding beyond
/// image_size is discarded.
void place_slice(Bytes& image, const PageLayout& layout, std::size_t page,
                 ByteView slice);

/// Splits `data` into `count` equal blocks, zero-padding the tail.
std::vector<Bytes> split_blocks(ByteView data, std::size_t count);

/// Splits `data` into `count` blocks of exactly `block_size` bytes each,
/// zero-padding; count * block_size must cover data.
std::vector<Bytes> split_fixed(ByteView data, std::size_t block_size,
                               std::size_t count);

/// Smallest power of two >= v (v >= 1).
std::size_t next_pow2(std::size_t v);

}  // namespace lrs::proto
