#include "proto/sluice.h"

#include <optional>
#include <vector>

#include "crypto/puzzle.h"
#include "proto/layout.h"
#include "proto/packet.h"
#include "util/check.h"

namespace lrs::proto {

namespace {

class SluiceState final : public SchemeState {
 public:
  SluiceState(const CommonParams& params, const crypto::PacketHash& root_pk)
      : params_(params), root_pk_(root_pk) {
    LRS_CHECK_MSG(params_.k * params_.payload_size > crypto::kPacketHashSize,
                  "page too small to embed the next page's hash");
  }

  SluiceState(const CommonParams& params, const Bytes& image,
              crypto::MultiKeySigner& signer)
      : SluiceState(params, signer.root_public_key()) {
    build_from_image(image, signer);
  }

  // --- geometry --------------------------------------------------------------

  Version version() const override { return params_.version; }
  std::uint32_t num_pages() const override {
    return meta_ ? meta_->content_pages : 0;
  }
  std::size_t packets_in_page(std::uint32_t) const override {
    return params_.k;
  }
  std::size_t decode_threshold(std::uint32_t) const override {
    return params_.k;
  }

  // --- receiver --------------------------------------------------------------

  std::uint32_t pages_complete() const override { return complete_pages_; }
  bool image_complete() const override {
    return meta_ && complete_pages_ == meta_->content_pages;
  }

  Bytes assemble_image() const override {
    LRS_CHECK_MSG(image_complete(), "image not complete yet");
    const PageLayout layout = current_layout();
    Bytes image(layout.image_size, 0);
    const std::size_t g = meta_->content_pages;
    for (std::size_t p = 1; p <= g; ++p) {
      Bytes content = page_content(p);
      content.resize(p < g ? layout.mid_capacity : layout.last_capacity);
      place_slice(image, layout, p, view(content));
    }
    return image;
  }

  BitVec request_bits(std::uint32_t page) const override {
    BitVec bits(params_.k);
    if (!meta_ || page >= meta_->content_pages) return bits;
    for (std::size_t j = 0; j < params_.k; ++j) {
      if (!pages_[page][j].has_value()) bits.set(j);
    }
    return bits;
  }

  std::size_t buffered_packets() const override {
    if (!meta_ || complete_pages_ >= meta_->content_pages) return 0;
    std::size_t n = 0;
    for (const auto& slot : pages_[complete_pages_]) n += slot.has_value();
    return n;
  }

  void on_reboot() override {
    // Verified pages and the adopted signature metadata persist; the
    // unverified in-progress page buffer does not.
    if (!meta_ || complete_pages_ >= meta_->content_pages) return;
    for (auto& slot : pages_[complete_pages_]) slot.reset();
  }

  DataStatus on_data(std::uint32_t page, std::uint32_t index,
                     ByteView payload, sim::NodeMetrics& m) override {
    if (!meta_) return DataStatus::kStale;
    if (page != complete_pages_ || page >= meta_->content_pages) {
      return DataStatus::kStale;
    }
    if (index >= params_.k || payload.size() != params_.payload_size) {
      return DataStatus::kRejected;
    }
    auto& slot = pages_[page][index];
    // Deferred authentication: anything well-formed is buffered. A forged
    // packet occupies the slot and even displaces the genuine one.
    if (slot.has_value()) return DataStatus::kStale;
    slot = Bytes(payload.begin(), payload.end());
    if (request_bits(page).none()) {
      // Page assembled: NOW it can finally be checked as a whole.
      m.hash_verifications += 1;
      if (!crypto::equal(hash_page_bytes(assemble_page(page)),
                         expected_hashes_[page])) {
        // Poisoned — no way to tell which packet; discard everything.
        m.auth_failures += 1;
        m.page_discards += 1;
        for (auto& s : pages_[page]) s.reset();
        return DataStatus::kRejected;
      }
      // Verified: the page's tail (if any) authenticates the NEXT page.
      if (page + 1 < meta_->content_pages) {
        const Bytes full = assemble_page(page);
        expected_hashes_[page + 1] = crypto::read_packet_hash(
            view(full), full.size() - crypto::kPacketHashSize);
      }
      ++complete_pages_;
      return image_complete() ? DataStatus::kImageComplete
                              : DataStatus::kPageComplete;
    }
    return DataStatus::kStored;
  }

  bool verify_stored_packet(std::uint32_t page, std::uint32_t index,
                            ByteView payload,
                            sim::NodeMetrics&) const override {
    // A completed page's packets can be checked by byte comparison.
    if (!meta_ || page >= complete_pages_ || index >= params_.k) return false;
    const auto& slot = pages_[page][index];
    return slot.has_value() &&
           view(*slot).size() == payload.size() &&
           std::equal(payload.begin(), payload.end(), slot->begin());
  }

  // --- signature --------------------------------------------------------------

  bool needs_signature() const override { return true; }
  bool bootstrapped() const override { return meta_.has_value(); }

  bool on_signature(ByteView frame, sim::NodeMetrics& m) override {
    if (meta_) return false;
    auto packet = SignaturePacket::parse(frame);
    if (!packet || packet->meta.version != params_.version) {
      m.auth_failures += 1;
      return false;
    }
    const Bytes msg = packet->signed_message();
    if (packet->puzzle.strength < params_.puzzle_strength ||
        !crypto::verify_puzzle(view(msg), packet->puzzle)) {
      m.puzzle_rejections += 1;
      return false;
    }
    auto cert =
        crypto::CertifiedSignature::deserialize(view(packet->signature));
    m.signature_verifications += 1;
    if (!cert || !crypto::verify_certified_cached(root_pk_, view(msg), *cert)) {
      m.auth_failures += 1;
      return false;
    }
    adopt_meta(packet->meta, packet->root);
    signature_frame_ = Bytes(frame.begin(), frame.end());
    return true;
  }

  std::optional<Bytes> signature_frame() const override {
    return signature_frame_;
  }

  // --- sender ----------------------------------------------------------------

  std::optional<Bytes> packet_payload(std::uint32_t page,
                                      std::uint32_t index) override {
    if (!meta_ || page >= complete_pages_ || index >= params_.k) {
      return std::nullopt;
    }
    return pages_[page][index];
  }

  std::unique_ptr<TxScheduler> make_scheduler(
      std::uint32_t page) const override {
    return make_union_scheduler(packets_in_page(page));
  }

 private:
  std::size_t mid_capacity() const {
    return params_.k * params_.payload_size - crypto::kPacketHashSize;
  }
  std::size_t last_capacity() const {
    return params_.k * params_.payload_size;
  }

  PageLayout current_layout() const {
    LRS_CHECK(meta_.has_value());
    PageLayout l = compute_layout(meta_->image_size, mid_capacity(),
                                  last_capacity());
    LRS_CHECK_MSG(l.content_pages == meta_->content_pages,
                  "signed geometry disagrees with preloaded parameters");
    return l;
  }

  void adopt_meta(const SignedMeta& meta, const crypto::PacketHash& root) {
    LRS_CHECK(meta.content_pages >= 1 && meta.image_size >= 1);
    meta_ = meta;
    pages_.assign(meta.content_pages, {});
    for (auto& page : pages_) page.assign(params_.k, std::nullopt);
    expected_hashes_.assign(meta.content_pages, {});
    expected_hashes_[0] = root;  // the signature covers H(page 1)
  }

  /// Full serialized page (k concatenated payloads) from receive buffers.
  Bytes assemble_page(std::uint32_t page) const {
    Bytes out;
    out.reserve(params_.k * params_.payload_size);
    for (const auto& slot : pages_[page]) {
      out.insert(out.end(), slot->begin(), slot->end());
    }
    return out;
  }

  /// Serialized bytes of content page p (1-based); the caller strips the
  /// embedded next-page hash by resizing to the page's image capacity.
  Bytes page_content(std::uint32_t p) const {
    return assemble_page(p - 1);
  }

  static crypto::PacketHash hash_page_bytes(const Bytes& page) {
    return crypto::packet_hash(view(page));
  }

  void build_from_image(const Bytes& image, crypto::MultiKeySigner& signer) {
    const PageLayout layout =
        compute_layout(image.size(), mid_capacity(), last_capacity());
    const std::size_t g = layout.content_pages;

    SignedMeta meta;
    meta.version = params_.version;
    meta.content_pages = static_cast<std::uint32_t>(g);
    meta.image_size = static_cast<std::uint32_t>(image.size());

    // Build pages back to front: page p (p < g) = slice || H(page p+1).
    std::vector<Bytes> serialized(g);
    crypto::PacketHash next_hash{};
    for (std::size_t p = g; p >= 1; --p) {
      Bytes content = page_slice(view(image), layout, p);
      if (p < g) crypto::append(content, next_hash);
      LRS_CHECK(content.size() == params_.k * params_.payload_size);
      serialized[p - 1] = content;
      next_hash = hash_page_bytes(content);
    }

    SignaturePacket sig;
    sig.meta = meta;
    sig.root = next_hash;  // H(page 1)
    const Bytes msg = sig.signed_message();
    sig.puzzle = crypto::solve_puzzle(view(msg), params_.puzzle_strength);
    sig.signature = signer.sign(view(msg)).serialize();

    adopt_meta(meta, sig.root);
    for (std::size_t p = 1; p <= g; ++p) {
      auto blocks =
          split_fixed(view(serialized[p - 1]), params_.payload_size,
                      params_.k);
      for (std::size_t j = 0; j < params_.k; ++j)
        pages_[p - 1][j] = std::move(blocks[j]);
      if (p < g) {
        // Engine page index p (0-based) = content page p+1, whose hash
        // rides in content page p's tail.
        expected_hashes_[p] = crypto::read_packet_hash(
            view(serialized[p - 1]),
            serialized[p - 1].size() - crypto::kPacketHashSize);
      }
    }
    complete_pages_ = static_cast<std::uint32_t>(g);
    signature_frame_ = sig.serialize();
  }

  CommonParams params_;
  crypto::PacketHash root_pk_;

  std::optional<SignedMeta> meta_;
  std::optional<Bytes> signature_frame_;

  std::vector<std::vector<std::optional<Bytes>>> pages_;
  // expected_hashes_[e] = H(serialized content page e+1): entry 0 comes
  // from the signature, entry e > 0 from the verified tail of page e-1.
  std::vector<crypto::PacketHash> expected_hashes_;
  std::uint32_t complete_pages_ = 0;
};

}  // namespace

std::unique_ptr<SchemeState> make_sluice_source(
    const CommonParams& params, const Bytes& image,
    crypto::MultiKeySigner& signer) {
  return std::make_unique<SluiceState>(params, image, signer);
}

std::unique_ptr<SchemeState> make_sluice_receiver(
    const CommonParams& params, const crypto::PacketHash& root_public_key) {
  return std::make_unique<SluiceState>(params, root_public_key);
}

}  // namespace lrs::proto
