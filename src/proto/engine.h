// The shared page-by-page dissemination engine (Deluge §II-A semantics).
//
// Every node is in one of three states at any time (paper §IV-D):
//   MAINTAIN — Trickle-paced advertisements of (version, pages complete);
//   RX       — actively SNACK-requesting the next incomplete page from a
//              chosen neighbor, with Deluge-style request suppression;
//   TX       — serving a requested page, packet order chosen by the
//              scheme's TxScheduler (union for Deluge/Seluge, greedy
//              round-robin for LR-Seluge).
//
// Scheme-specific behavior — authentication, decoding, request bitmaps,
// packet regeneration — lives behind SchemeState. The engine additionally
// implements: signature-packet bootstrap (initial flood from the base
// station plus on-demand rebroadcast to late neighbors), and the
// denial-of-receipt mitigation of §IV-E (per-neighbor SNACK budgets).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "proto/packet.h"
#include "proto/params.h"
#include "proto/scheme.h"
#include "sim/simulator.h"

namespace lrs::proto {

enum class NodeState { kMaintain, kRx, kTx };

/// Receive-side verification memo, shared by every node of one simulator
/// (wired through EngineConfig by the experiment harness). A broadcast
/// frame reaches all its receivers under the same nonzero
/// Env::delivery_serial(); the first receiver records the parse/verify
/// outcome here and the rest reuse it instead of redoing the control MAC,
/// the body parse or the packet hash. Per-receiver accounting
/// (auth_failures, hash_verifications, …) is still charged by every
/// receiver — only the recomputation is elided — so metric columns are
/// byte-identical with and without the memo. Serial 0 (test doubles,
/// fault-mutated frames) disables sharing; nodes with differing keys or
/// versions stay correct because key schedules are sender-derived and
/// version checks remain per-receiver.
struct RxFanoutMemo {
  std::uint64_t adv_serial = 0;
  bool adv_ok = false;
  Advertisement adv{};

  std::uint64_t snack_serial = 0;
  bool snack_ok = false;
  Snack snack{};

  std::uint64_t data_serial = 0;
  bool data_ok = false;
  DataPacket data{};

  // Digest of the data packet's (version, page, index, payload) preimage,
  // filled by the first receiver that actually hashes it (receivers that
  // drop the packet as a duplicate never do).
  std::uint64_t digest_serial = 0;
  RxDigestMemo digest{};
};

class DissemNode : public sim::Node {
 public:
  DissemNode(sim::Env& env, std::unique_ptr<SchemeState> scheme,
             EngineConfig config, Bytes cluster_key);

  void on_start() override;
  void on_receive(ByteView frame) override;
  /// Crash/reboot fault: volatile protocol + scheme state resets, the
  /// scheme's persisted page frontier survives.
  void on_reboot() override;

  /// Replaces the node's image state (base-station side of an upgrade:
  /// the operator pushes a new, signed image into the network). Receivers
  /// upgrade automatically via EngineConfig::scheme_factory when the new
  /// version's signature packet verifies.
  void upgrade(std::unique_ptr<SchemeState> next);

  NodeState state() const { return state_; }
  SchemeState& scheme() { return *scheme_; }
  const SchemeState& scheme() const { return *scheme_; }
  bool image_complete() const { return scheme_->image_complete(); }

 private:
  struct NeighborInfo {
    std::uint32_t pages_complete = 0;
    bool bootstrapped = false;
    sim::SimTime last_heard = 0;
  };

  // --- advertisement / Trickle ---------------------------------------------
  void trickle_restart();
  void arm_adv_fire();
  void on_adv_fire();
  void on_adv_interval_end();
  void send_advertisement();

  // --- RX -------------------------------------------------------------------
  void consider_rx();
  std::optional<NodeId> pick_server() const;
  void enter_rx(NodeId target);
  void leave_rx();
  void arm_snack(sim::SimTime delay);
  void send_snack();
  void on_snack_retry();

  // --- TX -------------------------------------------------------------------
  void handle_snack(const Snack& snack);
  void begin_or_merge_tx(const Snack& snack);
  TxScheduler* tx_session(std::uint32_t page);
  void serve_next();
  void leave_tx();

  // --- signature bootstrap ---------------------------------------------------
  void maybe_request_signature();
  void request_signature_from(NodeId target, Version version);
  void adopt_scheme(std::unique_ptr<SchemeState> next);
  void reset_protocol_state();
  /// MAC key schedule for SNACKs this node sends: the LEAP per-source key
  /// under LEAP auth (derived once, lazily — env().id() keyed), otherwise
  /// the cluster key; nullptr when control traffic is unauthenticated.
  const crypto::HmacKey* snack_tx_mac();
  /// Verification key schedule for a SNACK claiming to come from `sender`
  /// under LEAP auth. Derivation is deterministic in (master, sender), so
  /// the cache is pure memoization.
  const crypto::HmacKey& snack_rx_mac(NodeId sender);
  void maybe_broadcast_signature();

  // --- packet handlers -------------------------------------------------------
  void handle_advertisement(const Advertisement& adv);
  void handle_data(const DataPacket& data, std::uint64_t serial);
  void handle_signature_frame(ByteView frame);

  void on_progress();  // page or image newly complete

  sim::SimTime rand_delay(sim::SimTime max);

  /// Moves the MAINTAIN/RX/TX state machine and reports the transition to
  /// the simulator's observer chain (trace recorders); no-op hook when no
  /// observer is attached.
  void set_state(NodeState next);
  /// Reports a received packet that failed authentication.
  void note_auth_failure(sim::PacketClass cls);

  /// Re-reads the mirrored scheme getters below. Called wherever the
  /// scheme can move: construction, adoption/upgrade, reboot, a verified
  /// signature, or a data packet that completed a page.
  void refresh_scheme_view();

  // --- hot state -------------------------------------------------------------
  // Everything the per-delivery path touches is packed together at the
  // front of the object: one broadcast fans out to ~radio-degree
  // receivers, and each receiver's dispatch should miss as few cache
  // lines as possible. In particular version/pages/bootstrapped/complete
  // mirror the scheme's constant-until-progress getters so the common
  // advertisement delivery never dereferences the scheme object at all.
  std::unique_ptr<SchemeState> scheme_;
  RxFanoutMemo* rx_memo_ = nullptr;  // == cfg_.rx_memo, hoisted
  NodeState state_ = NodeState::kMaintain;
  Version version_ = 0;                // scheme_->version()
  std::uint32_t pages_complete_ = 0;   // scheme_->pages_complete()
  bool bootstrapped_ = false;          // scheme_->bootstrapped()
  bool complete_ = false;              // scheme_->image_complete()

  // Neighbor table, flat and sorted by id. A node hears from its ~radio
  // degree of neighbors, so a contiguous array beats a node-based map on
  // the hottest protocol path (every advertisement updates it); iteration
  // order matches the std::map it replaced.
  struct NeighborEntry {
    NodeId id;
    NeighborInfo info;
  };
  std::vector<NeighborEntry> neighbors_;
  NeighborInfo& neighbor(NodeId id);
  void forget_neighbor(NodeId id);

  sim::Trickle trickle_;
  sim::EventToken adv_token_;

  // Cached serialized advertisement: the frame is a pure function of
  // (version, pages_complete, bootstrapped), and Trickle re-announces an
  // unchanged state many times per change, so the MAC is only recomputed
  // when the advertised state moves.
  Advertisement adv_cached_{};
  Bytes adv_frame_;

  // RX state.
  NodeId rx_target_ = 0;
  int rx_retries_ = 0;
  sim::EventToken rx_token_;
  // Latest time the next SNACK may be deferred to (anti-stall).
  sim::SimTime rx_deadline_ = 0;

  // --- cold state ------------------------------------------------------------
  EngineConfig cfg_;
  Bytes cluster_key_;

  // Precomputed HMAC pad midstates (crypto::HmacKey): every delivered
  // control frame runs one MAC, so the per-key schedule is hoisted out of
  // the hot path. nullopt when cluster_key_ is empty (insecure schemes).
  std::optional<crypto::HmacKey> cluster_mac_;
  std::optional<crypto::HmacKey> leap_tx_mac_;
  std::unordered_map<NodeId, crypto::HmacKey> leap_rx_macs_;

  // TX state: one service session per requested page, flat and sorted by
  // page, always draining the lowest page first (Deluge priority). Sessions
  // persist until idle so a request for an earlier page never discards
  // accumulated state.
  std::vector<std::pair<std::uint32_t, std::unique_ptr<TxScheduler>>>
      tx_sessions_;
  sim::EventToken tx_token_;
  bool rx_pending_resume_ = false;

  // Signature bootstrap. Requests address one bootstrapped neighbor; if
  // that target stays silent (its advertisement may have squeaked through
  // a near-silent gray-zone link, so neither requests nor replies get
  // across), rotate to the next bootstrapped neighbor every
  // kSigTargetRotate unanswered requests — pinning the first-heard
  // neighbor forever can strand an otherwise well-connected node, which
  // is a liveness bug, not a latency one (observed: 33k requests to a
  // 0.001-PRR target over 12 simulated hours, a dozen strong completed
  // neighbors never asked). The threshold is deliberately high: streaks
  // in the low thousands occur legitimately while the wavefront is still
  // far away (the measured worst case in the 10k-node ladder rung is
  // 2001), and rotating early reshapes bootstrap traffic everywhere.
  // 4096 sits above every observed benign streak with 2x margin while
  // still unsticking a pinned node in minutes of simulated time.
  static constexpr std::uint32_t kSigTargetRotate = 4096;
  bool sig_request_armed_ = false;
  sim::EventToken sig_token_;
  sim::SimTime last_sig_broadcast_ = -1;
  std::uint32_t sig_requests_unanswered_ = 0;

  // Denial-of-receipt mitigation: packets requested per (neighbor, page).
  // Flat, sorted by (neighbor, page) — a node serves a handful of
  // neighbors at a time.
  struct DorEntry {
    NodeId sender;
    std::uint32_t page;
    std::size_t used;
  };
  std::vector<DorEntry> dor_counters_;
  std::size_t& dor_counter(NodeId sender, std::uint32_t page);

  // Round-robin rotation position per page, persisted across TX sessions
  // so successive bursts cover fresh packet indices. Flat, sorted by page.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> serve_rotation_;
};

}  // namespace lrs::proto
