// The shared page-by-page dissemination engine (Deluge §II-A semantics).
//
// Every node is in one of three states at any time (paper §IV-D):
//   MAINTAIN — Trickle-paced advertisements of (version, pages complete);
//   RX       — actively SNACK-requesting the next incomplete page from a
//              chosen neighbor, with Deluge-style request suppression;
//   TX       — serving a requested page, packet order chosen by the
//              scheme's TxScheduler (union for Deluge/Seluge, greedy
//              round-robin for LR-Seluge).
//
// Scheme-specific behavior — authentication, decoding, request bitmaps,
// packet regeneration — lives behind SchemeState. The engine additionally
// implements: signature-packet bootstrap (initial flood from the base
// station plus on-demand rebroadcast to late neighbors), and the
// denial-of-receipt mitigation of §IV-E (per-neighbor SNACK budgets).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>

#include "proto/packet.h"
#include "proto/params.h"
#include "proto/scheme.h"
#include "sim/simulator.h"

namespace lrs::proto {

enum class NodeState { kMaintain, kRx, kTx };

class DissemNode : public sim::Node {
 public:
  DissemNode(sim::Env& env, std::unique_ptr<SchemeState> scheme,
             EngineConfig config, Bytes cluster_key);

  void on_start() override;
  void on_receive(ByteView frame) override;
  /// Crash/reboot fault: volatile protocol + scheme state resets, the
  /// scheme's persisted page frontier survives.
  void on_reboot() override;

  /// Replaces the node's image state (base-station side of an upgrade:
  /// the operator pushes a new, signed image into the network). Receivers
  /// upgrade automatically via EngineConfig::scheme_factory when the new
  /// version's signature packet verifies.
  void upgrade(std::unique_ptr<SchemeState> next);

  NodeState state() const { return state_; }
  SchemeState& scheme() { return *scheme_; }
  const SchemeState& scheme() const { return *scheme_; }
  bool image_complete() const { return scheme_->image_complete(); }

 private:
  struct NeighborInfo {
    std::uint32_t pages_complete = 0;
    bool bootstrapped = false;
    sim::SimTime last_heard = 0;
  };

  // --- advertisement / Trickle ---------------------------------------------
  void trickle_restart();
  void arm_adv_fire();
  void on_adv_fire();
  void on_adv_interval_end();
  void send_advertisement();

  // --- RX -------------------------------------------------------------------
  void consider_rx();
  std::optional<NodeId> pick_server() const;
  void enter_rx(NodeId target);
  void leave_rx();
  void arm_snack(sim::SimTime delay);
  void send_snack();
  void on_snack_retry();

  // --- TX -------------------------------------------------------------------
  void handle_snack(const Snack& snack);
  void begin_or_merge_tx(const Snack& snack);
  void serve_next();
  void leave_tx();

  // --- signature bootstrap ---------------------------------------------------
  void maybe_request_signature();
  void request_signature_from(NodeId target, Version version);
  void adopt_scheme(std::unique_ptr<SchemeState> next);
  void reset_protocol_state();
  /// MAC key schedule for SNACKs this node sends: the LEAP per-source key
  /// under LEAP auth (derived once, lazily — env().id() keyed), otherwise
  /// the cluster key; nullptr when control traffic is unauthenticated.
  const crypto::HmacKey* snack_tx_mac();
  /// Verification key schedule for a SNACK claiming to come from `sender`
  /// under LEAP auth. Derivation is deterministic in (master, sender), so
  /// the cache is pure memoization.
  const crypto::HmacKey& snack_rx_mac(NodeId sender);
  void maybe_broadcast_signature();

  // --- packet handlers -------------------------------------------------------
  void handle_advertisement(const Advertisement& adv);
  void handle_data(const DataPacket& data);
  void handle_signature_frame(ByteView frame);

  void on_progress();  // page or image newly complete

  sim::SimTime rand_delay(sim::SimTime max);

  /// Moves the MAINTAIN/RX/TX state machine and reports the transition to
  /// the simulator's observer chain (trace recorders); no-op hook when no
  /// observer is attached.
  void set_state(NodeState next);
  /// Reports a received packet that failed authentication.
  void note_auth_failure(sim::PacketClass cls);

  std::unique_ptr<SchemeState> scheme_;
  EngineConfig cfg_;
  Bytes cluster_key_;

  // Precomputed HMAC pad midstates (crypto::HmacKey): every delivered
  // control frame runs one MAC, so the per-key schedule is hoisted out of
  // the hot path. nullopt when cluster_key_ is empty (insecure schemes).
  std::optional<crypto::HmacKey> cluster_mac_;
  std::optional<crypto::HmacKey> leap_tx_mac_;
  std::unordered_map<NodeId, crypto::HmacKey> leap_rx_macs_;

  NodeState state_ = NodeState::kMaintain;
  sim::Trickle trickle_;
  sim::EventToken adv_token_;

  std::map<NodeId, NeighborInfo> neighbors_;

  // RX state.
  NodeId rx_target_ = 0;
  int rx_retries_ = 0;
  sim::EventToken rx_token_;
  // Latest time the next SNACK may be deferred to (anti-stall).
  sim::SimTime rx_deadline_ = 0;

  // TX state: one service session per requested page, always draining the
  // lowest page first (Deluge priority). Sessions persist until idle so a
  // request for an earlier page never discards accumulated state.
  std::map<std::uint32_t, std::unique_ptr<TxScheduler>> tx_sessions_;
  sim::EventToken tx_token_;
  bool rx_pending_resume_ = false;

  // Signature bootstrap.
  bool sig_request_armed_ = false;
  sim::EventToken sig_token_;
  sim::SimTime last_sig_broadcast_ = -1;

  // Denial-of-receipt mitigation: packets requested per (neighbor, page).
  std::map<std::pair<NodeId, std::uint32_t>, std::size_t> dor_counters_;

  // Round-robin rotation position per page, persisted across TX sessions
  // so successive bursts cover fresh packet indices.
  std::map<std::uint32_t, std::uint32_t> serve_rotation_;
};

}  // namespace lrs::proto
