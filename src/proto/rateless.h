// Rateless Deluge (Hagedorn, Starobinski & Trachtenberg, IPSN'08) — the
// loss-resilient-but-insecure corner of the design space (paper ref [2]).
//
// Pages are random-linear-coded over GF(256) with an (in principle)
// unbounded supply of encoded packets: a sender answering a request always
// has a fresh combination to offer, so no specific packet ever needs
// retransmitting. The flip side is the paper's motivation for LR-Seluge:
// because the packet stream is not predetermined, per-packet hash chaining
// is impossible — receivers must accept (and buffer, and spend decode work
// on) anything that parses. Our attack benches quantify that exposure.
//
// Implementation notes: coefficients derive deterministically from a
// preloaded seed and the (page, index) pair, with indices drawn from a
// large window (kWindowFactor * k per page) that stands in for "rateless";
// the first k indices are systematic. Receivers run an incremental
// GF(256) eliminator and decode at rank k.
#pragma once

#include <memory>

#include "proto/params.h"
#include "proto/scheme.h"

namespace lrs::proto {

/// Encoded-packet index window per page, as a multiple of k.
inline constexpr std::size_t kRatelessWindowFactor = 8;

std::unique_ptr<SchemeState> make_rateless_source(const CommonParams& params,
                                                  const Bytes& image);

std::unique_ptr<SchemeState> make_rateless_receiver(
    const CommonParams& params, std::size_t image_size);

}  // namespace lrs::proto
