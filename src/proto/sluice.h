// Sluice (Lanigan, Gandhi & Narasimhan, DSN'06) — authenticated
// dissemination with PAGE-level hash chaining (paper ref [8], discussed in
// §VII).
//
// Each page embeds the hash of the NEXT page; the base station signs the
// hash of the first page. Elegant and cheap — but a packet can only be
// verified once its WHOLE page is assembled. The paper's §VII critique,
// which this implementation lets the attack benches quantify: an adversary
// injecting a single bogus packet per page poisons the page buffer, the
// page-level hash fails on completion, the receiver must discard the page
// wholesale and start over — a denial of service at one forged packet per
// page. (Seluge's and LR-Seluge's immediate per-packet authentication
// closes exactly this hole.)
//
// The signature packet carries the same message-specific puzzle as the
// other schemes so the comparison isolates the data-path difference.
#pragma once

#include <memory>

#include "crypto/hash.h"
#include "crypto/wots.h"
#include "proto/params.h"
#include "proto/scheme.h"

namespace lrs::proto {

std::unique_ptr<SchemeState> make_sluice_source(const CommonParams& params,
                                                const Bytes& image,
                                                crypto::MultiKeySigner& signer);

std::unique_ptr<SchemeState> make_sluice_receiver(
    const CommonParams& params, const crypto::PacketHash& root_public_key);

}  // namespace lrs::proto
