// Deluge (Hui & Culler, SenSys'04): the non-secure ARQ baseline.
//
// The image is split into g pages of k packets each; a receiver needs every
// packet of a page before moving on. There is no authentication of any
// kind: any well-formed data packet is stored — which is exactly the attack
// surface Seluge/LR-Seluge close.
//
// Receivers are constructed with the image size (in a real deployment the
// metadata rides in advertisements; carrying it out of band keeps the
// baseline comparable without modelling Deluge's profile packets).
#pragma once

#include <memory>

#include "proto/params.h"
#include "proto/scheme.h"

namespace lrs::proto {

/// Base-station side: the full image.
std::unique_ptr<SchemeState> make_deluge_source(const CommonParams& params,
                                                const Bytes& image);

/// Receiver side: geometry only.
std::unique_ptr<SchemeState> make_deluge_receiver(const CommonParams& params,
                                                  std::size_t image_size);

}  // namespace lrs::proto
