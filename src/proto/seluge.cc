#include "proto/seluge.h"

#include <optional>
#include <vector>

#include "crypto/merkle.h"
#include "crypto/puzzle.h"
#include "proto/layout.h"
#include "proto/packet.h"
#include "util/check.h"

namespace lrs::proto {

namespace {

/// Serialized byte length of a Merkle auth path of the given depth.
std::size_t path_bytes(std::size_t depth) {
  return depth * crypto::kPacketHashSize;
}

class SelugeState final : public SchemeState {
 public:
  /// Receiver: empty until the signature packet verifies.
  SelugeState(const CommonParams& params, const crypto::PacketHash& root_pk)
      : params_(params), root_pk_(root_pk) {
    LRS_CHECK_MSG(params_.payload_size > crypto::kPacketHashSize,
                  "payload must fit a block plus an embedded hash");
  }

  /// Base station: preprocess + sign.
  SelugeState(const CommonParams& params, const Bytes& image,
              crypto::MultiKeySigner& signer)
      : SelugeState(params, signer.root_public_key()) {
    build_from_image(image, signer);
  }

  // --- geometry --------------------------------------------------------------

  Version version() const override { return params_.version; }

  std::uint32_t num_pages() const override {
    return meta_ ? meta_->content_pages + 1 : 0;
  }

  std::size_t packets_in_page(std::uint32_t page) const override {
    return page == 0 ? hash_page_chunks() : params_.k;
  }

  std::size_t decode_threshold(std::uint32_t page) const override {
    return packets_in_page(page);  // ARQ: every packet is required
  }

  // --- receiver --------------------------------------------------------------

  std::uint32_t pages_complete() const override { return complete_pages_; }

  bool image_complete() const override {
    return meta_ && complete_pages_ == meta_->content_pages + 1;
  }

  Bytes assemble_image() const override {
    LRS_CHECK_MSG(image_complete(), "image not complete yet");
    const PageLayout layout = current_layout();
    Bytes image(layout.image_size, 0);
    const std::size_t g = meta_->content_pages;
    for (std::size_t p = 1; p <= g; ++p) {
      Bytes slice;
      const std::size_t data_len = p < g
                                       ? params_.payload_size -
                                             crypto::kPacketHashSize
                                       : params_.payload_size;
      for (const auto& payload : content_pages_[p - 1]) {
        slice.insert(slice.end(), payload->begin(),
                     payload->begin() + static_cast<std::ptrdiff_t>(data_len));
      }
      slice.resize(p < g ? layout.mid_capacity : layout.last_capacity);
      place_slice(image, layout, p, view(slice));
    }
    return image;
  }

  BitVec request_bits(std::uint32_t page) const override {
    const std::size_t count = packets_in_page(page);
    BitVec bits(count);
    if (!meta_) return bits;
    if (page == 0) {
      for (std::size_t j = 0; j < count; ++j) {
        if (!hash_page_packets_[j].has_value()) bits.set(j);
      }
      return bits;
    }
    if (page > meta_->content_pages) return bits;
    const auto& pkts = content_pages_[page - 1];
    for (std::size_t j = 0; j < count; ++j) {
      if (!pkts[j].has_value()) bits.set(j);
    }
    return bits;
  }

  std::size_t buffered_packets() const override {
    if (!meta_ || image_complete()) return 0;
    std::size_t n = 0;
    if (complete_pages_ == 0) {
      for (const auto& slot : hash_page_packets_) n += slot.has_value();
    } else {
      for (const auto& slot : content_pages_[complete_pages_ - 1]) {
        n += slot.has_value();
      }
    }
    return n;
  }

  void on_reboot() override {
    // Every buffered packet here already passed per-packet authentication,
    // but it still lives in RAM until the page completes and is flushed.
    if (!meta_ || image_complete()) return;
    if (complete_pages_ == 0) {
      for (auto& slot : hash_page_packets_) slot.reset();
    } else {
      for (auto& slot : content_pages_[complete_pages_ - 1]) slot.reset();
    }
  }

  DataStatus on_data(std::uint32_t page, std::uint32_t index,
                     ByteView payload, sim::NodeMetrics& m) override {
    return on_data(page, index, payload, m, nullptr);
  }

  DataStatus on_data(std::uint32_t page, std::uint32_t index,
                     ByteView payload, sim::NodeMetrics& m,
                     RxDigestMemo* dig) override {
    if (!meta_) return DataStatus::kStale;  // cannot authenticate yet
    if (page != complete_pages_ || page > meta_->content_pages) {
      return DataStatus::kStale;
    }
    return page == 0 ? on_hash_page_data(index, payload, m)
                     : on_content_data(page, index, payload, m, dig);
  }

  // --- signature --------------------------------------------------------------

  bool verify_stored_packet(std::uint32_t page, std::uint32_t index,
                            ByteView payload,
                            sim::NodeMetrics& m) const override {
    return verify_stored_packet(page, index, payload, m, nullptr);
  }

  bool verify_stored_packet(std::uint32_t page, std::uint32_t index,
                            ByteView payload, sim::NodeMetrics& m,
                            RxDigestMemo* dig) const override {
    if (!meta_ || page >= complete_pages_) return false;
    if (page == 0) {
      const std::size_t depth = merkle_depth();
      if (index >= hash_page_chunks() ||
          payload.size() != params_.payload_size + path_bytes(depth)) {
        return false;
      }
      std::vector<crypto::PacketHash> path;
      for (std::size_t lvl = 0; lvl < depth; ++lvl) {
        path.push_back(crypto::read_packet_hash(
            payload, params_.payload_size + lvl * crypto::kPacketHashSize));
      }
      m.hash_verifications += depth + 1;
      return crypto::equal(
          crypto::MerkleTree::compute_root(
              payload.subspan(0, params_.payload_size), index, path),
          root_);
    }
    if (index >= params_.k || payload.size() != params_.payload_size)
      return false;
    m.hash_verifications += 1;
    return crypto::equal(content_digest(page, index, payload, dig),
                         expected_hashes_[page][index]);
  }

  bool needs_signature() const override { return true; }
  bool bootstrapped() const override { return meta_.has_value(); }

  bool on_signature(ByteView frame, sim::NodeMetrics& m) override {
    if (meta_) return false;
    auto packet = SignaturePacket::parse(frame);
    if (!packet || packet->meta.version != params_.version) {
      m.auth_failures += 1;
      return false;
    }
    const Bytes msg = packet->signed_message();
    // Weak authenticator first: one hash gates the expensive verification.
    // The required strength is the preloaded one — the field in the packet
    // is attacker-controlled and must not weaken the check.
    if (packet->puzzle.strength < params_.puzzle_strength ||
        !crypto::verify_puzzle(view(msg), packet->puzzle)) {
      m.puzzle_rejections += 1;
      return false;
    }
    auto cert = crypto::CertifiedSignature::deserialize(view(packet->signature));
    m.signature_verifications += 1;
    if (!cert || !crypto::verify_certified_cached(root_pk_, view(msg), *cert)) {
      m.auth_failures += 1;
      return false;
    }
    adopt_meta(packet->meta, packet->root);
    signature_frame_ = Bytes(frame.begin(), frame.end());
    return true;
  }

  std::optional<Bytes> signature_frame() const override {
    return signature_frame_;
  }

  // --- sender ----------------------------------------------------------------

  std::optional<Bytes> packet_payload(std::uint32_t page,
                                      std::uint32_t index) override {
    if (!meta_ || page >= complete_pages_) return std::nullopt;
    if (page == 0) {
      if (index >= hash_page_packets_.size()) return std::nullopt;
      return hash_page_packets_[index];
    }
    if (index >= params_.k) return std::nullopt;
    return content_pages_[page - 1][index];
  }

  std::unique_ptr<TxScheduler> make_scheduler(
      std::uint32_t page) const override {
    return make_union_scheduler(packets_in_page(page));
  }

 private:
  // --- geometry helpers -------------------------------------------------------

  std::size_t hash_page_bytes() const {
    return params_.k * crypto::kPacketHashSize;
  }
  std::size_t hash_page_chunks() const {
    return (hash_page_bytes() + params_.payload_size - 1) /
           params_.payload_size;
  }
  std::size_t merkle_depth() const {
    std::size_t leaves = next_pow2(hash_page_chunks());
    std::size_t d = 0;
    while ((std::size_t{1} << d) < leaves) ++d;
    return d;
  }

  PageLayout current_layout() const {
    LRS_CHECK(meta_.has_value());
    const std::size_t mid =
        params_.k * (params_.payload_size - crypto::kPacketHashSize);
    const std::size_t last = params_.k * params_.payload_size;
    PageLayout l = compute_layout(meta_->image_size, mid, last);
    LRS_CHECK_MSG(l.content_pages == meta_->content_pages,
                  "signed geometry disagrees with preloaded parameters");
    return l;
  }

  void adopt_meta(const SignedMeta& meta, const crypto::PacketHash& root) {
    LRS_CHECK(meta.content_pages >= 1 && meta.image_size >= 1);
    meta_ = meta;
    root_ = root;
    hash_page_packets_.assign(hash_page_chunks(), std::nullopt);
    content_pages_.assign(meta.content_pages, {});
    for (auto& page : content_pages_)
      page.assign(params_.k, std::nullopt);
    expected_hashes_.assign(meta.content_pages + 1, {});
  }

  // --- receive paths ----------------------------------------------------------

  DataStatus on_hash_page_data(std::uint32_t index, ByteView payload,
                               sim::NodeMetrics& m) {
    const std::size_t chunks = hash_page_chunks();
    const std::size_t depth = merkle_depth();
    if (index >= chunks ||
        payload.size() != params_.payload_size + path_bytes(depth)) {
      m.auth_failures += 1;
      return DataStatus::kRejected;
    }
    if (hash_page_packets_[index].has_value()) return DataStatus::kStale;

    const ByteView chunk = payload.subspan(0, params_.payload_size);
    std::vector<crypto::PacketHash> path;
    path.reserve(depth);
    for (std::size_t lvl = 0; lvl < depth; ++lvl) {
      path.push_back(crypto::read_packet_hash(
          payload, params_.payload_size + lvl * crypto::kPacketHashSize));
    }
    m.hash_verifications += depth + 1;
    if (!crypto::equal(crypto::MerkleTree::compute_root(chunk, index, path),
                       root_)) {
      m.auth_failures += 1;
      return DataStatus::kRejected;
    }
    hash_page_packets_[index] = Bytes(payload.begin(), payload.end());

    if (request_bits(0).none()) {
      finish_hash_page();
      ++complete_pages_;
      return DataStatus::kPageComplete;
    }
    return DataStatus::kStored;
  }

  void finish_hash_page() {
    // Reassemble M0 = h_{1,1} || ... || h_{1,k} and index it.
    Bytes m0;
    for (const auto& p : hash_page_packets_) {
      m0.insert(m0.end(), p->begin(),
                p->begin() + static_cast<std::ptrdiff_t>(params_.payload_size));
    }
    m0.resize(hash_page_bytes());
    auto& hashes = expected_hashes_[1];
    hashes.clear();
    for (std::size_t j = 0; j < params_.k; ++j) {
      hashes.push_back(
          crypto::read_packet_hash(view(m0), j * crypto::kPacketHashSize));
    }
  }

  DataStatus on_content_data(std::uint32_t page, std::uint32_t index,
                             ByteView payload, sim::NodeMetrics& m,
                             RxDigestMemo* dig) {
    if (index >= params_.k || payload.size() != params_.payload_size) {
      m.auth_failures += 1;
      return DataStatus::kRejected;
    }
    auto& slot = content_pages_[page - 1][index];
    if (slot.has_value()) return DataStatus::kStale;

    m.hash_verifications += 1;
    if (!crypto::equal(content_digest(page, index, payload, dig),
                       expected_hashes_[page][index])) {
      m.auth_failures += 1;
      return DataStatus::kRejected;
    }
    slot = Bytes(payload.begin(), payload.end());

    if (request_bits(page).none()) {
      if (page < meta_->content_pages) extract_next_hashes(page);
      ++complete_pages_;
      return image_complete() ? DataStatus::kImageComplete
                              : DataStatus::kPageComplete;
    }
    return DataStatus::kStored;
  }

  /// Packet-content digest with the cross-receiver memo (see RxDigestMemo):
  /// the preimage is identical for every receiver of one delivery, so only
  /// the first receiver computes it. hash_verifications stays per-caller.
  crypto::PacketHash content_digest(std::uint32_t page, std::uint32_t index,
                                    ByteView payload, RxDigestMemo* dig) const {
    if (dig && dig->valid) return dig->digest;
    crypto::PacketHash h =
        data_packet_hash(params_.version, page, index, payload);
    if (dig) {
      dig->digest = h;
      dig->valid = true;
    }
    return h;
  }

  void extract_next_hashes(std::uint32_t page) {
    // Packet (page, j) carries h_{page+1, j} in its trailing bytes.
    auto& hashes = expected_hashes_[page + 1];
    hashes.clear();
    for (std::size_t j = 0; j < params_.k; ++j) {
      const auto& payload = content_pages_[page - 1][j];
      hashes.push_back(crypto::read_packet_hash(
          view(*payload), params_.payload_size - crypto::kPacketHashSize));
    }
  }

  // --- build (base station) ----------------------------------------------------

  void build_from_image(const Bytes& image, crypto::MultiKeySigner& signer) {
    const std::size_t mid =
        params_.k * (params_.payload_size - crypto::kPacketHashSize);
    const std::size_t last = params_.k * params_.payload_size;
    const PageLayout layout = compute_layout(image.size(), mid, last);
    const std::size_t g = layout.content_pages;

    SignedMeta meta;
    meta.version = params_.version;
    meta.content_pages = static_cast<std::uint32_t>(g);
    meta.image_size = static_cast<std::uint32_t>(image.size());

    // Construct packets in reverse page order so hashes chain forward.
    std::vector<std::vector<Bytes>> payloads(g);
    std::vector<crypto::PacketHash> next_hashes;  // of page i+1
    for (std::size_t p = g; p >= 1; --p) {
      const Bytes slice = page_slice(view(image), layout, p);
      const std::size_t data_len =
          p < g ? params_.payload_size - crypto::kPacketHashSize
                : params_.payload_size;
      auto blocks = split_blocks(view(slice), params_.k);
      std::vector<Bytes> page_payloads(params_.k);
      std::vector<Bytes> preimages(params_.k);
      std::vector<ByteView> preimage_views(params_.k);
      for (std::size_t j = 0; j < params_.k; ++j) {
        LRS_CHECK(blocks[j].size() == data_len);
        Bytes payload = std::move(blocks[j]);
        if (p < g) crypto::append(payload, next_hashes[j]);
        DataPacket probe;
        probe.version = params_.version;
        probe.page = static_cast<std::uint32_t>(p);
        probe.index = static_cast<std::uint32_t>(j);
        probe.payload = std::move(payload);
        preimages[j] = probe.hash_preimage();
        preimage_views[j] = view(preimages[j]);
        page_payloads[j] = std::move(probe.payload);
      }
      // One uniform-length batch per page (crypto/hash.h).
      std::vector<crypto::PacketHash> page_hashes(params_.k);
      crypto::packet_hash_batch(preimage_views.data(), params_.k,
                                page_hashes.data());
      payloads[p - 1] = std::move(page_payloads);
      next_hashes = std::move(page_hashes);
    }

    // Hash page: M0 = h_{1,1} || ... || h_{1,k}, chunked, Merkle tree.
    Bytes m0;
    for (const auto& h : next_hashes) crypto::append(m0, h);
    const std::size_t chunks = hash_page_chunks();
    auto chunk_blocks = split_fixed(view(m0), params_.payload_size, chunks);

    std::vector<Bytes> leaves = chunk_blocks;
    leaves.resize(next_pow2(chunks));  // pad with empty leaves
    const auto tree = crypto::MerkleTree::build(leaves);

    std::vector<Bytes> hash_page_payloads(chunks);
    for (std::size_t j = 0; j < chunks; ++j) {
      Bytes payload = chunk_blocks[j];
      for (const auto& sib : tree.auth_path(j)) crypto::append(payload, sib);
      hash_page_payloads[j] = std::move(payload);
    }

    // Signature packet.
    SignaturePacket sig;
    sig.meta = meta;
    sig.root = tree.root();
    const Bytes msg = sig.signed_message();
    sig.puzzle = crypto::solve_puzzle(view(msg), params_.puzzle_strength);
    sig.signature = signer.sign(view(msg)).serialize();

    // Adopt as a fully-populated state.
    adopt_meta(meta, tree.root());
    for (std::size_t j = 0; j < chunks; ++j)
      hash_page_packets_[j] = std::move(hash_page_payloads[j]);
    finish_hash_page();
    for (std::size_t p = 1; p <= g; ++p) {
      for (std::size_t j = 0; j < params_.k; ++j)
        content_pages_[p - 1][j] = std::move(payloads[p - 1][j]);
      if (p < g) extract_next_hashes(static_cast<std::uint32_t>(p));
    }
    complete_pages_ = static_cast<std::uint32_t>(g + 1);
    signature_frame_ = sig.serialize();
  }

  CommonParams params_;
  crypto::PacketHash root_pk_;  // preloaded signer verification key

  std::optional<SignedMeta> meta_;
  crypto::PacketHash root_{};
  std::optional<Bytes> signature_frame_;

  // Received/held packet payloads (hash page keeps chunk || auth path).
  std::vector<std::optional<Bytes>> hash_page_packets_;
  std::vector<std::vector<std::optional<Bytes>>> content_pages_;
  // expected_hashes_[i][j] = h_{i,j}; index 0 unused.
  std::vector<std::vector<crypto::PacketHash>> expected_hashes_;
  std::uint32_t complete_pages_ = 0;
};

}  // namespace

std::unique_ptr<SchemeState> make_seluge_source(
    const CommonParams& params, const Bytes& image,
    crypto::MultiKeySigner& signer) {
  return std::make_unique<SelugeState>(params, image, signer);
}

std::unique_ptr<SchemeState> make_seluge_receiver(
    const CommonParams& params, const crypto::PacketHash& root_public_key) {
  return std::make_unique<SelugeState>(params, root_public_key);
}

}  // namespace lrs::proto
