#include "proto/scheduler.h"

#include "util/check.h"

namespace lrs::proto {

namespace {

class UnionScheduler final : public TxScheduler {
 public:
  explicit UnionScheduler(std::size_t packets)
      : pending_(packets), last_(packets == 0 ? 0 : packets - 1) {}

  void on_snack(NodeId, const BitVec& requested, std::size_t) override {
    LRS_CHECK(requested.size() == pending_.size());
    pending_ |= requested;
  }

  std::optional<std::uint32_t> next_packet() override {
    if (pending_.none()) return std::nullopt;
    const auto idx = pending_.first_set_cyclic((last_ + 1) % pending_.size());
    LRS_CHECK(idx.has_value());
    pending_.clear(*idx);
    last_ = *idx;
    return static_cast<std::uint32_t>(*idx);
  }

  void on_overheard_data(std::uint32_t index) override {
    if (index < pending_.size()) pending_.clear(index);
  }

  void set_start(std::uint32_t index) override {
    if (pending_.size() > 0)
      last_ = (index + pending_.size() - 1) % pending_.size();
  }

  bool idle() const override { return pending_.none(); }
  std::size_t backlog() const override { return pending_.count(); }

 private:
  BitVec pending_;
  std::size_t last_;
};

}  // namespace

std::unique_ptr<TxScheduler> make_union_scheduler(
    std::size_t packets_in_page) {
  return std::make_unique<UnionScheduler>(packets_in_page);
}

}  // namespace lrs::proto
