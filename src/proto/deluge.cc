#include "proto/deluge.h"

#include <optional>
#include <vector>

#include "proto/layout.h"
#include "util/check.h"

namespace lrs::proto {

namespace {

class DelugeState final : public SchemeState {
 public:
  DelugeState(const CommonParams& params, std::size_t image_size)
      : params_(params),
        layout_(compute_layout(image_size, page_capacity(), page_capacity())),
        pages_(layout_.content_pages) {
    for (auto& page : pages_) page.assign(params_.k, std::nullopt);
  }

  /// Base-station constructor: pre-populates every page.
  DelugeState(const CommonParams& params, const Bytes& image)
      : DelugeState(params, image.size()) {
    for (std::size_t p = 1; p <= layout_.content_pages; ++p) {
      const Bytes slice = page_slice(view(image), layout_, p);
      auto blocks = split_blocks(view(slice), params_.k);
      for (std::size_t j = 0; j < params_.k; ++j) {
        LRS_CHECK(blocks[j].size() == params_.payload_size);
        pages_[p - 1][j] = std::move(blocks[j]);
      }
    }
    complete_pages_ = layout_.content_pages;
  }

  Version version() const override { return params_.version; }
  std::uint32_t num_pages() const override {
    return static_cast<std::uint32_t>(layout_.content_pages);
  }
  std::size_t packets_in_page(std::uint32_t) const override {
    return params_.k;
  }
  std::size_t decode_threshold(std::uint32_t) const override {
    return params_.k;
  }

  std::uint32_t pages_complete() const override { return complete_pages_; }
  bool image_complete() const override {
    return complete_pages_ == layout_.content_pages;
  }

  Bytes assemble_image() const override {
    LRS_CHECK_MSG(image_complete(), "image not complete yet");
    Bytes image(layout_.image_size, 0);
    for (std::size_t p = 1; p <= layout_.content_pages; ++p) {
      Bytes slice;
      for (const auto& block : pages_[p - 1]) {
        slice.insert(slice.end(), block->begin(), block->end());
      }
      slice.resize(p < layout_.content_pages ? layout_.mid_capacity
                                             : layout_.last_capacity);
      place_slice(image, layout_, p, view(slice));
    }
    return image;
  }

  BitVec request_bits(std::uint32_t page) const override {
    BitVec bits(params_.k);
    if (page >= pages_.size()) return bits;
    for (std::size_t j = 0; j < params_.k; ++j) {
      if (!pages_[page][j].has_value()) bits.set(j);
    }
    return bits;
  }

  std::size_t buffered_packets() const override {
    if (complete_pages_ >= pages_.size()) return 0;
    std::size_t n = 0;
    for (const auto& slot : pages_[complete_pages_]) n += slot.has_value();
    return n;
  }

  void on_reboot() override {
    // Completed pages live in flash; the in-progress page buffer is RAM.
    if (complete_pages_ >= pages_.size()) return;
    for (auto& slot : pages_[complete_pages_]) slot.reset();
  }

  DataStatus on_data(std::uint32_t page, std::uint32_t index,
                     ByteView payload, sim::NodeMetrics&) override {
    if (page != complete_pages_ || page >= pages_.size()) {
      return DataStatus::kStale;
    }
    if (index >= params_.k) return DataStatus::kRejected;
    // No authentication whatsoever: only shape is checked.
    if (payload.size() != params_.payload_size) return DataStatus::kRejected;
    auto& slot = pages_[page][index];
    if (slot.has_value()) return DataStatus::kStale;
    slot = Bytes(payload.begin(), payload.end());

    if (request_bits(page).none()) {
      ++complete_pages_;
      return image_complete() ? DataStatus::kImageComplete
                              : DataStatus::kPageComplete;
    }
    return DataStatus::kStored;
  }

  bool verify_stored_packet(std::uint32_t page, std::uint32_t index,
                            ByteView payload,
                            sim::NodeMetrics&) const override {
    // Deluge has no packet authentication; only shape is checked.
    return page < complete_pages_ && index < params_.k &&
           payload.size() == params_.payload_size;
  }

  bool needs_signature() const override { return false; }
  bool bootstrapped() const override { return true; }
  bool on_signature(ByteView, sim::NodeMetrics&) override { return false; }
  std::optional<Bytes> signature_frame() const override {
    return std::nullopt;
  }

  std::optional<Bytes> packet_payload(std::uint32_t page,
                                      std::uint32_t index) override {
    if (page >= complete_pages_ || index >= params_.k) return std::nullopt;
    return pages_[page][index];
  }

  std::unique_ptr<TxScheduler> make_scheduler(
      std::uint32_t page) const override {
    return make_union_scheduler(packets_in_page(page));
  }

 private:
  std::size_t page_capacity() const {
    return params_.k * params_.payload_size;
  }

  CommonParams params_;
  PageLayout layout_;
  // pages_[p][j]: packet j of content page p+1 (engine page p).
  std::vector<std::vector<std::optional<Bytes>>> pages_;
  std::uint32_t complete_pages_ = 0;
};

}  // namespace

std::unique_ptr<SchemeState> make_deluge_source(const CommonParams& params,
                                                const Bytes& image) {
  return std::make_unique<DelugeState>(params, image);
}

std::unique_ptr<SchemeState> make_deluge_receiver(const CommonParams& params,
                                                  std::size_t image_size) {
  return std::make_unique<DelugeState>(params, image_size);
}

}  // namespace lrs::proto
