#include "proto/layout.h"

#include <algorithm>

#include "util/check.h"

namespace lrs::proto {

PageLayout compute_layout(std::size_t image_size, std::size_t mid_capacity,
                          std::size_t last_capacity) {
  LRS_CHECK(image_size > 0);
  LRS_CHECK_MSG(mid_capacity > 0 && last_capacity > 0,
                "page capacities must be positive (hash overhead >= page?)");
  PageLayout l;
  l.image_size = image_size;
  l.mid_capacity = mid_capacity;
  l.last_capacity = last_capacity;
  if (image_size <= last_capacity) {
    l.content_pages = 1;
  } else {
    const std::size_t rest = image_size - last_capacity;
    l.content_pages = 1 + (rest + mid_capacity - 1) / mid_capacity;
  }
  return l;
}

namespace {
/// [offset, length) of page `page`'s slice within the image.
std::pair<std::size_t, std::size_t> slice_range(const PageLayout& l,
                                                std::size_t page) {
  LRS_CHECK(page >= 1 && page <= l.content_pages);
  if (page < l.content_pages) {
    return {(page - 1) * l.mid_capacity, l.mid_capacity};
  }
  const std::size_t off = (l.content_pages - 1) * l.mid_capacity;
  return {off, l.last_capacity};
}
}  // namespace

Bytes page_slice(ByteView image, const PageLayout& layout, std::size_t page) {
  LRS_CHECK(image.size() == layout.image_size);
  const auto [off, len] = slice_range(layout, page);
  Bytes out(len, 0);
  const std::size_t avail = off < image.size() ? image.size() - off : 0;
  const std::size_t take = std::min(len, avail);
  std::copy_n(image.begin() + off, take, out.begin());
  return out;
}

void place_slice(Bytes& image, const PageLayout& layout, std::size_t page,
                 ByteView slice) {
  LRS_CHECK(image.size() == layout.image_size);
  const auto [off, len] = slice_range(layout, page);
  LRS_CHECK(slice.size() == len);
  const std::size_t avail = off < image.size() ? image.size() - off : 0;
  const std::size_t put = std::min(len, avail);
  std::copy_n(slice.begin(), put, image.begin() + off);
}

std::vector<Bytes> split_blocks(ByteView data, std::size_t count) {
  LRS_CHECK(count >= 1);
  const std::size_t block = (data.size() + count - 1) / count;
  LRS_CHECK(block >= 1);
  std::vector<Bytes> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Bytes b(block, 0);
    const std::size_t off = i * block;
    if (off < data.size()) {
      const std::size_t take = std::min(block, data.size() - off);
      std::copy_n(data.begin() + off, take, b.begin());
    }
    out.push_back(std::move(b));
  }
  return out;
}

std::vector<Bytes> split_fixed(ByteView data, std::size_t block_size,
                               std::size_t count) {
  LRS_CHECK(block_size >= 1 && count >= 1);
  LRS_CHECK(block_size * count >= data.size());
  std::vector<Bytes> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Bytes b(block_size, 0);
    const std::size_t off = i * block_size;
    if (off < data.size()) {
      const std::size_t take = std::min(block_size, data.size() - off);
      std::copy_n(data.begin() + off, take, b.begin());
    }
    out.push_back(std::move(b));
  }
  return out;
}

std::size_t next_pow2(std::size_t v) {
  LRS_CHECK(v >= 1);
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace lrs::proto
