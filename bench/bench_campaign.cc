// Scenario campaign runner (ISSUE 5 tentpole).
//
// Loads declarative scenario files (scenarios/*.scn, docs/scenarios.md),
// runs each one's trial block through the deterministic parallel trial
// runner, and reports the paper's metrics per scenario plus a pass/fail
// verdict: at least `expected_complete()` receivers finished in every
// trial, every completed receiver reassembled the exact image, and — when
// the scenario enables it — the invariant observer ran clean.
//
//   ./bench_campaign                        # every scenarios/*.scn
//   ./bench_campaign scenarios/churn.scn    # explicit files/directories
//
// Flags: --repeats=R (override every scenario's trial block), --jobs=J,
// --quick (one repeat per scenario), --list (parse, validate and print the
// library without running), --trace=T.jsonl / --timeseries=TS.json /
// --trace-all (structured event traces, docs/observability.md). Writes
// BENCH_campaign.json (LRS_BENCH_JSON convention); rows are bit-identical
// for any worker count, so serial and LRS_JOBS=8 artifacts can be cmp'd.
// Exits 1 when any scenario fails its verdict.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/run_trials.h"
#include "sim/scenario/scenario.h"
#include "util/args.h"
#include "util/csv.h"

namespace lrs {
namespace {

namespace fs = std::filesystem;

/// Expands positional arguments (files or directories) into a sorted list
/// of .scn paths; no arguments = the checked-in scenarios/ library.
std::vector<std::string> collect_paths(const std::vector<std::string>& args) {
  std::vector<std::string> inputs = args;
  if (inputs.empty()) inputs.push_back("scenarios");
  std::vector<std::string> paths;
  for (const auto& in : inputs) {
    std::error_code ec;
    if (fs::is_directory(in, ec)) {
      for (const auto& entry : fs::directory_iterator(in, ec)) {
        if (entry.path().extension() == ".scn") {
          paths.push_back(entry.path().string());
        }
      }
    } else {
      paths.push_back(in);
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  return paths;
}

struct Verdict {
  bool passed = true;
  std::string reason = "ok";
};

Verdict judge(const scenario::Scenario& s,
              const std::vector<core::ExperimentResult>& trials) {
  const std::size_t expected = s.expected_complete();
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const auto& r = trials[i];
    const std::string tag = "trial " + std::to_string(i) + " (seed " +
                            std::to_string(s.seed + i) + "): ";
    if (r.completed < expected) {
      return {false, tag + std::to_string(r.completed) + "/" +
                         std::to_string(expected) +
                         " expected receivers finished"};
    }
    if (!r.images_match) {
      return {false, tag + "image mismatch on a completed receiver"};
    }
    if (r.invariant_violations > 0) {
      return {false, tag + r.first_violation};
    }
  }
  return {};
}

int run(int argc, char** argv) {
  Args args(argc, argv);
  const bool quick = args.get_bool("quick", false);
  const bool list_only = args.get_bool("list", false);
  const long repeats_flag = args.get_int("repeats", 0);  // 0 = per-scenario
  const long jobs_flag = args.get_int("jobs", 0);
  sim::TraceExportConfig trace;
  trace.events_path = args.get("trace", "");
  if (!trace.events_path.empty()) {
    trace.chrome_path = bench::chrome_trace_path(trace.events_path);
  }
  trace.timeseries_path = args.get("timeseries", "");
  trace.all_trials = args.get_bool("trace-all", false);
  const std::string metrics = args.get("metrics", "");
  const double metrics_heartbeat = args.get_double("metrics-heartbeat", 0.0);

  bool bad = repeats_flag < 0 || jobs_flag < 0;
  if (trace.all_trials && trace.events_path.empty() &&
      trace.timeseries_path.empty()) {
    std::cerr << "error: --trace-all needs --trace and/or --timeseries\n";
    bad = true;
  }
  if (metrics_heartbeat < 0 || (metrics_heartbeat > 0 && metrics.empty())) {
    std::cerr << "error: --metrics-heartbeat needs --metrics=FILE and a"
                 " positive period\n";
    bad = true;
  }
  for (const auto& e : args.errors()) {
    std::cerr << "error: " << e << "\n";
    bad = true;
  }
  for (const auto& u : args.unknown()) {
    std::cerr << "error: unknown flag " << u << "\n";
    bad = true;
  }
  if (bad) {
    std::cerr << "usage: " << argv[0]
              << " [files-or-dirs...] [--repeats=R] [--jobs=J] [--quick]"
                 " [--list] [--trace=T.jsonl] [--timeseries=TS.json]"
                 " [--trace-all] [--metrics=M.json]"
                 " [--metrics-heartbeat=S]\n";
    return 2;
  }
  bench::arm_metrics_export(metrics, metrics_heartbeat);
  const std::size_t jobs = static_cast<std::size_t>(jobs_flag);

  const auto paths = collect_paths(args.positional());
  if (paths.empty()) {
    std::cerr << "error: no scenario files found (looked in scenarios/)\n";
    return 2;
  }

  std::vector<scenario::Scenario> library;
  for (const auto& path : paths) {
    std::string error;
    auto s = scenario::load_scenario_file(path, &error);
    if (!s) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    library.push_back(std::move(*s));
  }

  if (list_only) {
    Table listing({"scenario", "scheme", "topology", "nodes", "channel",
                   "faults", "repeats"});
    for (const auto& s : library) {
      const bool has_faults = s.faults.any() || !s.late_joiners.empty() ||
                              !s.early_sleepers.empty();
      listing.add_row({s.name, core::scheme_name(s.scheme),
                       sim::topology_kind_name(s.topo.kind),
                       std::to_string(s.topo.node_count()),
                       scenario::channel_model_name(s.channel.model),
                       has_faults ? s.faults.describe() : "none",
                       std::to_string(s.repeats)});
    }
    bench::print_table("scenario library", listing);
    return 0;
  }

  Table table({"scenario", "scheme", "topology", "nodes", "repeats",
               "data_pkts", "snack_pkts", "adv_pkts", "total_bytes",
               "recv_bytes", "latency_s", "min_completed", "expected",
               "reboots", "inv_viol", "passed"});
  std::size_t failures = 0;

  for (std::size_t i = 0; i < library.size(); ++i) {
    const auto& s = library[i];
    core::ExperimentConfig config = scenario::scenario_config(s);
    // --repeats / --quick override the scenario's own trial block.
    const std::size_t repeats =
        repeats_flag > 0 ? static_cast<std::size_t>(repeats_flag)
                         : (quick ? 1 : s.repeats);
    if (i == 0 || trace.all_trials) config.trace = trace;

    const auto trials = core::run_trials(config, repeats, jobs);
    const auto avg = core::aggregate_trials(trials);
    const Verdict verdict = judge(s, trials);
    if (!verdict.passed) {
      ++failures;
      std::cerr << "FAIL " << s.name << ": " << verdict.reason << "\n";
    }

    std::uint64_t reboots = 0, violations = 0;
    std::size_t min_completed = trials.empty() ? 0 : trials[0].completed;
    for (const auto& r : trials) {
      reboots += r.reboots;
      violations += r.invariant_violations;
      min_completed = std::min(min_completed, r.completed);
    }

    table.add_row({s.name, core::scheme_name(s.scheme),
                   sim::topology_kind_name(s.topo.kind),
                   std::to_string(s.topo.node_count()),
                   std::to_string(repeats),
                   format_num(static_cast<double>(avg.data_packets)),
                   format_num(static_cast<double>(avg.snack_packets)),
                   format_num(static_cast<double>(avg.adv_packets)),
                   format_num(static_cast<double>(avg.total_bytes)),
                   format_num(static_cast<double>(avg.received_bytes)),
                   format_num(avg.latency_s, 1),
                   std::to_string(min_completed),
                   std::to_string(s.expected_complete()),
                   std::to_string(reboots), std::to_string(violations),
                   verdict.passed ? "true" : "false"});
  }

  bench::print_table("scenario campaign", table);
  std::cout << "\n" << library.size() - failures << "/" << library.size()
            << " scenarios passed\n";

  std::vector<std::pair<std::string, std::string>> extras = {
      {"scenarios", std::to_string(library.size())},
      {"failures", std::to_string(failures)},
      {"quick", quick ? "true" : "false"}};
  bench::write_bench_json("campaign", table, extras);

  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace lrs

int main(int argc, char** argv) { return lrs::run(argc, argv); }
