// Fleet-engine throughput and convergence ladder (ISSUE 10 tentpole).
//
// Drives the multi-tenant campaign engine (src/fleet) through a tenants x
// cells ladder — up to 16 tenants and 1024 concurrent one-hop cells in one
// process — mixing codecs (rs / lrc / xorsched), image versions and at
// least one delta-image tenant per rung, and reports per-tenant completion,
// aggregate events/sec, per-tenant load imbalance and peak RSS.
//
//   ./bench_fleet                 # full ladder: 4x16, 8x32, 16x64 cells
//   ./bench_fleet --quick         # CI tier: one 8-tenant, 64-cell rung
//   ./bench_fleet --jobs=8        # worker count (default LRS_JOBS)
//
// Column contract (docs/fleet.md): every column up to and including
// "images_ok" is a pure function of the rung's tenant specs and must be
// byte-identical for any worker count — CI diffs them serial vs LRS_JOBS=8.
// That includes "imbalance": max/mean per-cell event load, derived from
// deterministic event counts. The trailing wall_s / events_per_sec /
// peak_rss_mb / steals columns are machine- and schedule-dependent and are
// excluded from determinism comparisons (steals is the work-stealing
// pool's successful-steal count — Gauge territory, never a Counter).
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "fleet/engine.h"
#include "util/args.h"
#include "util/csv.h"

namespace lrs {
namespace {

/// One rung of the ladder: `tenants` tenants with `cells_per_tenant` cells
/// each (total = product).
struct Rung {
  std::size_t tenants;
  std::size_t cells_per_tenant;
};

const std::vector<Rung> kLadder = {{4, 16}, {8, 32}, {16, 64}};
const std::vector<Rung> kQuickLadder = {{8, 8}};

/// See bench_scale.cc: reset the kernel RSS high-water mark so each rung
/// reports its own peak, not the process-lifetime maximum.
void reset_peak_rss() {
  std::ofstream f("/proc/self/clear_refs");
  if (f) f << "5";
}

double peak_rss_mb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      try {
        return std::stod(line.substr(6)) / 1024.0;  // KiB -> MiB
      } catch (...) {
        break;
      }
    }
  }
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

const char* codec_name(erasure::CodecKind k) {
  switch (k) {
    case erasure::CodecKind::kReedSolomon: return "rs";
    case erasure::CodecKind::kRlcGf2: return "rlc2";
    case erasure::CodecKind::kRlcGf256: return "rlc256";
    case erasure::CodecKind::kLt: return "lt";
    case erasure::CodecKind::kLrc: return "lrc";
    case erasure::CodecKind::kXorSchedule: return "xorsched";
  }
  return "?";
}

/// Tenant `t` of a rung: small LR-Seluge geometry (fast cells), codec
/// cycling through the three deterministic backends, versions 1-3, image
/// sizes 1-2.5 KB, heterogeneous 4-12 receiver stars, and every fifth
/// tenant a delta-image tenant (previous version's image patched to this
/// one, only changed pages disseminated).
fleet::TenantSpec tenant_spec(std::size_t rung_index, std::size_t t,
                              std::size_t cells_per_tenant) {
  fleet::TenantSpec spec;
  {
    std::string id = std::to_string(t);
    if (id.size() < 2) id.insert(id.begin(), '0');
    spec.name = "t" + id;
  }
  spec.params.payload_size = 32;
  spec.params.k = 8;
  spec.params.n = 12;
  spec.params.k0 = 4;
  spec.params.n0 = 8;
  spec.params.puzzle_strength = 4;
  spec.delta = (t % 5) == 4;
  spec.params.version =
      spec.delta ? 2 : static_cast<Version>(1 + t % 3);
  const erasure::CodecKind kCodecs[] = {erasure::CodecKind::kReedSolomon,
                                        erasure::CodecKind::kLrc,
                                        erasure::CodecKind::kXorSchedule};
  spec.params.codec = kCodecs[t % 3];
  spec.image_size = 1024 + 512 * (t % 4);
  spec.seed = 1 + 1000 * rung_index + t;
  spec.cells = cells_per_tenant;
  spec.receivers_min = 4;
  spec.receivers_max = 12;
  spec.loss_p = 0.01 + 0.02 * static_cast<double>(t % 3);
  spec.delta_page_size = 256;
  // Tight Trickle so the tiny images converge in simulated seconds; the
  // harness prices engine throughput, not Deluge's idle advertisement tail.
  spec.timing.trickle.tau_low = 250 * sim::kMillisecond;
  spec.timing.trickle.tau_high = 4 * sim::kSecond;
  spec.time_limit = 600LL * sim::kSecond;
  return spec;
}

int run(int argc, char** argv) {
  Args args(argc, argv);
  const bool quick = args.get_bool("quick", false);
  const long jobs_flag = args.get_int("jobs", 0);
  const std::string metrics = args.get("metrics", "");
  const double metrics_heartbeat = args.get_double("metrics-heartbeat", 0.0);

  bool bad = jobs_flag < 0;
  if (metrics_heartbeat < 0 || (metrics_heartbeat > 0 && metrics.empty())) {
    std::cerr << "error: --metrics-heartbeat needs --metrics=FILE and a"
                 " positive period\n";
    bad = true;
  }
  for (const auto& e : args.errors()) {
    std::cerr << "error: " << e << "\n";
    bad = true;
  }
  for (const auto& u : args.unknown()) {
    std::cerr << "error: unknown flag " << u << "\n";
    bad = true;
  }
  if (!args.positional().empty()) {
    std::cerr << "error: bench_fleet takes no positional arguments\n";
    bad = true;
  }
  if (bad) {
    std::cerr << "usage: " << argv[0]
              << " [--quick] [--jobs=J] [--metrics=M.json]"
                 " [--metrics-heartbeat=S]\n";
    return 2;
  }
  bench::arm_metrics_export(metrics, metrics_heartbeat);

  const std::vector<Rung>& ladder = quick ? kQuickLadder : kLadder;

  Table table({"rung", "tenants", "cells", "tenant", "codec", "version",
               "delta", "receivers", "converged", "events",
               "max_cell_events", "imbalance", "data_pkts", "snack_pkts",
               "total_bytes", "latency_s", "images_ok", "wall_s",
               "events_per_sec", "peak_rss_mb", "steals"});

  bool all_converged = true;
  for (std::size_t ri = 0; ri < ladder.size(); ++ri) {
    const Rung& rung = ladder[ri];
    const std::string rung_name = std::to_string(rung.tenants) + "x" +
                                  std::to_string(rung.cells_per_tenant);

    fleet::FleetEngine engine;
    for (std::size_t t = 0; t < rung.tenants; ++t) {
      engine.add_tenant(tenant_spec(ri, t, rung.cells_per_tenant));
    }
    engine.prepare();

    reset_peak_rss();
    const auto t0 = std::chrono::steady_clock::now();
    const fleet::FleetReport report =
        engine.run(static_cast<std::size_t>(jobs_flag));
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    const double rss = peak_rss_mb();

    for (const fleet::TenantResult& tr : report.tenants) {
      if (tr.phase != fleet::TenantPhase::kConverged) {
        all_converged = false;
        std::cerr << "FAIL " << rung_name << "/" << tr.name << ": "
                  << fleet::phase_name(tr.phase) << " ("
                  << tr.converged_cells << "/" << tr.cells
                  << " cells converged)\n";
      }
      // Per-tenant rows carry only deterministic cells; the rung-level
      // timing numbers live on the ALL row so they appear exactly once.
      table.add_row({rung_name, std::to_string(rung.tenants),
                     std::to_string(report.cells), tr.name,
                     codec_name(tr.codec), std::to_string(tr.version),
                     tr.delta ? "true" : "false",
                     std::to_string(tr.receivers),
                     std::to_string(tr.converged_cells) + "/" +
                         std::to_string(tr.cells),
                     std::to_string(tr.events),
                     std::to_string(tr.max_cell_events),
                     format_num(tr.imbalance(), 3),
                     std::to_string(tr.data_packets),
                     std::to_string(tr.snack_packets),
                     std::to_string(tr.total_bytes),
                     format_num(tr.latency_max_s, 1),
                     tr.images_ok ? "true" : "false", "", "", "", ""});
    }

    std::size_t converged = 0;
    std::uint64_t data = 0, snack = 0, bytes = 0;
    std::size_t receivers = 0;
    double latency = 0.0;
    bool images_ok = true;
    for (const fleet::TenantResult& tr : report.tenants) {
      converged += tr.converged_cells;
      receivers += tr.receivers;
      data += tr.data_packets;
      snack += tr.snack_packets;
      bytes += tr.total_bytes;
      latency = std::max(latency, tr.latency_max_s);
      images_ok = images_ok && tr.images_ok;
    }
    table.add_row({rung_name, std::to_string(rung.tenants),
                   std::to_string(report.cells), "ALL", "-", "0", "false",
                   std::to_string(receivers),
                   std::to_string(converged) + "/" +
                       std::to_string(report.cells),
                   std::to_string(report.events),
                   std::to_string(report.max_cell_events),
                   format_num(report.imbalance(), 3), std::to_string(data),
                   std::to_string(snack), std::to_string(bytes),
                   format_num(latency, 1), images_ok ? "true" : "false",
                   format_num(wall, 3),
                   format_num(static_cast<double>(report.events) / wall),
                   format_num(rss, 3), std::to_string(report.steals)});
  }

  bench::print_table("fleet engine ladder", table);

  std::vector<std::pair<std::string, std::string>> extras = {
      {"quick", quick ? "true" : "false"},
      {"jobs", std::to_string(jobs_flag)}};
  bench::write_bench_json("fleet", table, extras);
  return all_converged ? 0 : 1;
}

}  // namespace
}  // namespace lrs

int main(int argc, char** argv) { return lrs::run(argc, argv); }
