// Microbenchmarks for the TX schedulers: how fast the greedy round-robin
// tracking table picks packets as neighborhood size grows, versus the
// union scheduler — the per-transmission CPU cost of the paper's §IV-D.3
// algorithm.
#include <benchmark/benchmark.h>

#include "core/greedy_scheduler.h"
#include "proto/scheduler.h"
#include "util/rng.h"

namespace {

using namespace lrs;

void fill_requests(proto::TxScheduler& s, std::size_t n,
                   std::size_t receivers, std::size_t kprime, Rng& rng) {
  for (NodeId v = 0; v < receivers; ++v) {
    BitVec bits(n);
    for (std::size_t j = 0; j < n; ++j) bits.set(j, rng.bernoulli(0.6));
    if (bits.none()) bits.set(0);
    const std::size_t q = bits.count();
    const std::size_t d = q + kprime > n ? q + kprime - n : 1;
    s.on_snack(v, bits, d);
  }
}

void BM_GreedyDrain(benchmark::State& state) {
  const std::size_t receivers = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    core::GreedyRoundRobinScheduler s(48);
    fill_requests(s, 48, receivers, 32, rng);
    state.ResumeTiming();
    while (s.next_packet()) {
    }
  }
}
BENCHMARK(BM_GreedyDrain)->Arg(4)->Arg(20)->Arg(100);

void BM_UnionDrain(benchmark::State& state) {
  const std::size_t receivers = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    auto s = proto::make_union_scheduler(48);
    fill_requests(*s, 48, receivers, 32, rng);
    state.ResumeTiming();
    while (s->next_packet()) {
    }
  }
}
BENCHMARK(BM_UnionDrain)->Arg(4)->Arg(20)->Arg(100);

void BM_GreedySnackMerge(benchmark::State& state) {
  Rng rng(3);
  core::GreedyRoundRobinScheduler s(48);
  BitVec bits(48);
  for (std::size_t j = 0; j < 48; ++j) bits.set(j, rng.bernoulli(0.5));
  NodeId v = 0;
  for (auto _ : state) {
    s.on_snack(v++ % 64, bits, 16);
  }
}
BENCHMARK(BM_GreedySnackMerge);

}  // namespace

BENCHMARK_MAIN();
