// Ablation: the erasure-code instance behind LR-Seluge.
//
//  * rs     — systematic Cauchy Reed-Solomon, MDS: any k' = k packets
//             decode deterministically.
//  * rlc2   — systematic random linear code over GF(2) (XOR-only — what a
//             mica2-class mote would actually run); decoding needs rank k,
//             so the nominal threshold carries delta extra packets.
//  * rlc256 — random linear code over GF(256); near-MDS with cheap-ish
//             arithmetic.
//  * lrc    — pyramid locally repairable code: k' = k + g - 1 (39 at the
//             paper geometry), trading extra SNACK traffic for cheap
//             single-erasure repair.
//  * xorsched — Cauchy RS compiled to an XOR schedule; byte-identical wire
//             behavior to rs, so any traffic delta is measurement noise.
//
// Expected shape: RS is the traffic floor (xorsched must tie it); rlc2 pays
// a small overhead (its k' = k + delta inflates both the distance math and
// the occasional decode failure retry); rlc256 sits in between; lrc pays
// the largest deterministic k' premium. This quantifies the paper's
// "k' > k" remark in §VI-B.1. The k' column reports each codec's actual
// decode_threshold(), not k + delta.
#include "bench/common.h"

namespace lrs::bench {
namespace {

void run(const BenchOptions& opt) {
  struct Variant {
    erasure::CodecKind kind;
    std::size_t delta;
    const char* name;
  };
  const Variant variants[] = {
      {erasure::CodecKind::kReedSolomon, 0, "rs"},
      {erasure::CodecKind::kRlcGf256, 1, "rlc256"},
      {erasure::CodecKind::kRlcGf2, 2, "rlc2"},
      {erasure::CodecKind::kLt, 16, "lt(n=64)"},
      {erasure::CodecKind::kLrc, 0, "lrc"},
      {erasure::CodecKind::kXorSchedule, 0, "xorsched"},
  };
  const std::vector<double> losses =
      opt.quick ? std::vector<double>{0.1} : std::vector<double>{0.0, 0.1,
                                                                 0.2};
  std::vector<core::ExperimentConfig> configs;
  std::vector<std::vector<std::string>> prefixes;
  for (double p : losses) {
    for (const auto& v : variants) {
      auto cfg = paper_config(core::Scheme::kLrSeluge);
      cfg.params.codec = v.kind;
      cfg.params.delta = v.delta;
      // LT's peeling decoder needs substantial headroom at k = 32; give it
      // a wider packet window so the threshold stays below n.
      if (v.kind == erasure::CodecKind::kLt) cfg.params.n = 64;
      cfg.loss_p = p;
      configs.push_back(cfg);
      // Report the codec's real threshold (LRC's k' = k + g - 1 is a
      // property of the construction, not of delta).
      const auto code = erasure::make_code_cached(
          v.kind, cfg.params.k, cfg.params.n, v.delta, cfg.params.code_seed);
      prefixes.push_back(
          {format_num(p, 2), v.name,
           format_num(static_cast<double>(code->decode_threshold()))});
    }
  }
  const auto results = run_sweep(configs, opt);

  Table t({"p", "codec", "k'", "data_pkts", "snack_pkts", "total_bytes",
           "recv_bytes", "latency_s", "completed"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::vector<std::string> row = prefixes[i];
    row.push_back(format_num(static_cast<double>(r.data_packets)));
    row.push_back(format_num(static_cast<double>(r.snack_packets)));
    row.push_back(format_num(static_cast<double>(r.total_bytes)));
    row.push_back(format_num(static_cast<double>(r.received_bytes)));
    row.push_back(format_num(r.latency_s, 1));
    row.push_back(r.all_complete ? "true" : "false");
    t.add_row(std::move(row));
  }
  print_table("Ablation: erasure codec (LR-Seluge, one-hop, N=20, " +
                  std::to_string(opt.repeats) + " seeds)",
              t);
  write_bench_json("ablation_codec", t, sweep_extras(opt));
}

}  // namespace
}  // namespace lrs::bench

int main(int argc, char** argv) {
  lrs::bench::run(lrs::bench::parse_bench_options(argc, argv, 3));
  return 0;
}
