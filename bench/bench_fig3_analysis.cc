// Figure 3: analytical vs simulated data-packet transmissions for ONE page
// in a one-hop cell.
//
//  (a) vs packet-loss rate p (N = 10 receivers)
//  (b) vs number of receivers N (p = 0.2)
//
// Series: Seluge analytic (Theorem-1 closed form), Seluge simulated,
// ACK-based LR-Seluge analytic bound (Monte Carlo of the exact process),
// LR-Seluge simulated. Simulated values exclude hash-page (page 0) packets
// so they are comparable with the single-content-page models. Expected
// shape: simulation tracks the analytic curves; LR-Seluge stays below the
// ACK bound's neighborhood and far below Seluge once p grows; the ACK
// bound steps up when one coding round stops sufficing
// (P[Bin(n,1-p) >= k'] collapsing).
#include <iostream>

#include "analysis/one_hop.h"
#include "bench/common.h"

namespace lrs::bench {
namespace {

core::ExperimentConfig one_page_config(core::Scheme scheme, double p,
                                       std::size_t receivers) {
  core::ExperimentConfig c = paper_config(scheme);
  // Size the image to exactly one content page.
  c.image_size = c.params.k * c.params.payload_size;  // page g capacity
  c.receivers = receivers;
  c.loss_p = p;
  return c;
}

double content_data(const core::ExperimentResult& r) {
  return static_cast<double>(r.data_packets) -
         static_cast<double>(r.page0_data_packets);
}

void part_a(const BenchOptions& opt) {
  const std::size_t kReceivers = 10;
  const auto base = paper_config(core::Scheme::kLrSeluge);
  const std::vector<double> losses =
      opt.quick
          ? std::vector<double>{0.0, 0.2, 0.4}
          : std::vector<double>{0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35,
                                0.4, 0.45};

  // Two configs (Seluge, LR-Seluge) per loss point, one shared sweep.
  std::vector<core::ExperimentConfig> configs;
  for (double p : losses) {
    configs.push_back(one_page_config(core::Scheme::kSeluge, p, kReceivers));
    configs.push_back(one_page_config(core::Scheme::kLrSeluge, p,
                                      kReceivers));
  }
  const auto results = run_sweep(configs, opt);

  Table t({"p", "seluge_analytic", "seluge_sim", "acklr_analytic",
           "lr_sim", "one_round_prob"});
  for (std::size_t i = 0; i < losses.size(); ++i) {
    const double p = losses[i];
    analysis::AckLrModel model;
    model.k_prime = base.params.k;
    model.n = base.params.n;
    model.receivers = kReceivers;
    model.loss = p;
    model.trials = 5000;
    t.add_row({format_num(p, 2),
               format_num(analysis::seluge_expected_data_tx(
                   base.params.k, kReceivers, p), 1),
               format_num(content_data(results[2 * i]), 1),
               format_num(model.evaluate(), 1),
               format_num(content_data(results[2 * i + 1]), 1),
               format_num(analysis::one_round_completion_probability(
                   base.params.k, base.params.n, p), 3)});
  }
  print_table("Fig. 3(a): data packets per page vs loss rate (N=10)", t);
  write_bench_json("fig3a_analysis", t, sweep_extras(opt));
}

void part_b(const BenchOptions& opt) {
  const double kLoss = 0.2;
  const auto base = paper_config(core::Scheme::kLrSeluge);
  const std::vector<std::size_t> counts =
      opt.quick ? std::vector<std::size_t>{5, 20}
                : std::vector<std::size_t>{1, 5, 10, 15, 20, 25, 30};

  std::vector<core::ExperimentConfig> configs;
  for (std::size_t n_recv : counts) {
    configs.push_back(one_page_config(core::Scheme::kSeluge, kLoss, n_recv));
    configs.push_back(one_page_config(core::Scheme::kLrSeluge, kLoss,
                                      n_recv));
  }
  const auto results = run_sweep(configs, opt);

  Table t({"N", "seluge_analytic", "seluge_sim", "acklr_analytic", "lr_sim"});
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::size_t n_recv = counts[i];
    analysis::AckLrModel model;
    model.k_prime = base.params.k;
    model.n = base.params.n;
    model.receivers = n_recv;
    model.loss = kLoss;
    model.trials = 5000;
    t.add_row({format_num(static_cast<double>(n_recv)),
               format_num(analysis::seluge_expected_data_tx(
                   base.params.k, n_recv, kLoss), 1),
               format_num(content_data(results[2 * i]), 1),
               format_num(model.evaluate(), 1),
               format_num(content_data(results[2 * i + 1]), 1)});
  }
  print_table("Fig. 3(b): data packets per page vs receivers (p=0.2)", t);
  write_bench_json("fig3b_analysis", t, sweep_extras(opt));
}

}  // namespace
}  // namespace lrs::bench

int main(int argc, char** argv) {
  const auto opt = lrs::bench::parse_bench_options(argc, argv, 5);
  lrs::bench::part_a(opt);
  // --trace/--timeseries apply to part (a) only; a second traced sweep
  // would overwrite part (a)'s files at the same paths.
  auto opt_b = opt;
  opt_b.trace.clear();
  opt_b.timeseries.clear();
  opt_b.trace_all = false;
  lrs::bench::part_b(opt_b);
  return 0;
}
