// Figure 6(a)-(e): impact of the erasure-coding rate n/k on LR-Seluge.
//
// k is fixed at 32 while n sweeps; each loss rate gets its own series.
// Expected shape (paper §VI-B.3): introducing redundancy sharply cuts
// SNACK and data traffic (the paper cites -70.5% SNACKs and -30% data at
// p=0.1, n=56); pushing n further brings costs back up because the n*8
// bytes of next-page hashes ride inside every page, shrinking per-page
// image capacity and adding pages.
#include "bench/common.h"

namespace lrs::bench {
namespace {

void run() {
  Table t({"p", "n", "rate", "pages", "data_pkts", "snack_pkts", "adv_pkts",
           "total_bytes", "latency_s"});
  for (double p : {0.05, 0.1, 0.2}) {
    for (std::size_t n : {32u, 36u, 40u, 44u, 48u, 52u, 56u, 60u, 64u}) {
      auto cfg = paper_config(core::Scheme::kLrSeluge);
      cfg.params.n = n;
      cfg.loss_p = p;
      const auto r = run_experiment_avg(cfg, 3);
      // Page count from the capacity math (mirrors the builder).
      const std::size_t mid =
          cfg.params.k * cfg.params.payload_size - n * 8;
      const std::size_t last = cfg.params.k * cfg.params.payload_size;
      const std::size_t pages =
          cfg.image_size <= last
              ? 1
              : 1 + (cfg.image_size - last + mid - 1) / mid;
      std::vector<std::string> row{
          format_num(p, 2), format_num(static_cast<double>(n)),
          format_num(static_cast<double>(n) / 32.0, 2),
          format_num(static_cast<double>(pages))};
      for (auto& cell : metric_cells(r)) row.push_back(cell);
      t.add_row(std::move(row));
    }
  }
  print_table(
      "Fig. 6: impact of coding rate n/k (one-hop, N=20, k=32, 3 seeds)", t);
}

}  // namespace
}  // namespace lrs::bench

int main() {
  lrs::bench::run();
  return 0;
}
