// Figure 6(a)-(e): impact of the erasure-coding rate n/k on LR-Seluge.
//
// k is fixed at 32 while n sweeps; each loss rate gets its own series.
// Expected shape (paper §VI-B.3): introducing redundancy sharply cuts
// SNACK and data traffic (the paper cites -70.5% SNACKs and -30% data at
// p=0.1, n=56); pushing n further brings costs back up because the n*8
// bytes of next-page hashes ride inside every page, shrinking per-page
// image capacity and adding pages.
//
// The sweep also carries a codec axis {rs, lrc}: LRC's weaker-than-MDS
// threshold (k' = k + g - 1) costs extra packets at every rate, and the
// codec column lets the campaign quantify that premium point-by-point
// against the MDS baseline.
#include "bench/common.h"

namespace lrs::bench {
namespace {

void run(const BenchOptions& opt) {
  const std::vector<double> losses =
      opt.quick ? std::vector<double>{0.1} : std::vector<double>{0.05, 0.1,
                                                                 0.2};
  const std::vector<std::size_t> rates =
      opt.quick ? std::vector<std::size_t>{32, 48, 64}
                : std::vector<std::size_t>{32, 36, 40, 44, 48, 52, 56, 60,
                                           64};
  struct Codec {
    erasure::CodecKind kind;
    const char* name;
  };
  const Codec codecs[] = {
      {erasure::CodecKind::kReedSolomon, "rs"},
      {erasure::CodecKind::kLrc, "lrc"},
  };
  std::vector<core::ExperimentConfig> configs;
  std::vector<std::vector<std::string>> prefixes;
  for (const auto& codec : codecs) {
    for (double p : losses) {
      for (std::size_t n : rates) {
        auto cfg = paper_config(core::Scheme::kLrSeluge);
        cfg.params.codec = codec.kind;
        cfg.params.n = n;
        cfg.loss_p = p;
        // Page count from the capacity math (mirrors the builder).
        const std::size_t mid =
            cfg.params.k * cfg.params.payload_size - n * 8;
        const std::size_t last = cfg.params.k * cfg.params.payload_size;
        const std::size_t pages =
            cfg.image_size <= last
                ? 1
                : 1 + (cfg.image_size - last + mid - 1) / mid;
        configs.push_back(cfg);
        prefixes.push_back({codec.name, format_num(p, 2),
                            format_num(static_cast<double>(n)),
                            format_num(static_cast<double>(n) / 32.0, 2),
                            format_num(static_cast<double>(pages))});
      }
    }
  }
  const auto results = run_sweep(configs, opt);

  std::vector<std::string> header{"codec", "p", "n", "rate", "pages"};
  header.insert(header.end(), kMetricHeader.begin(), kMetricHeader.end());
  Table t(std::move(header));
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::vector<std::string> row = prefixes[i];
    for (auto& cell : metric_cells(results[i])) row.push_back(cell);
    t.add_row(std::move(row));
  }
  print_table("Fig. 6: impact of coding rate n/k (one-hop, N=20, k=32, " +
                  std::to_string(opt.repeats) + " seeds)",
              t);
  write_bench_json("fig6_coding_rate", t, sweep_extras(opt));
}

}  // namespace
}  // namespace lrs::bench

int main(int argc, char** argv) {
  lrs::bench::run(lrs::bench::parse_bench_options(argc, argv, 3));
  return 0;
}
