// Figure 5(a)-(e): impact of the number of local receivers N at p = 0.1.
//
// Expected shape: Seluge's data and SNACK costs grow markedly with N (each
// extra receiver demands its exact missing packets); LR-Seluge is far less
// sensitive because any k' of n packets complete a page, so one broadcast
// burst serves everyone. The paper additionally observes Seluge's latency
// creeping up with N while LR-Seluge's slightly decreases (more requesters
// -> the first SNACK for each page fires sooner).
#include "bench/common.h"

namespace lrs::bench {
namespace {

void run() {
  Table t({"N", "scheme", "data_pkts", "snack_pkts", "adv_pkts",
           "total_bytes", "latency_s"});
  for (std::size_t n_recv : {4u, 8u, 12u, 16u, 20u, 24u, 28u, 32u}) {
    for (auto scheme : {core::Scheme::kSeluge, core::Scheme::kLrSeluge}) {
      auto cfg = paper_config(scheme);
      cfg.receivers = n_recv;
      cfg.loss_p = 0.1;
      const auto r = run_experiment_avg(cfg, 3);
      std::vector<std::string> row{format_num(static_cast<double>(n_recv)),
                                   core::scheme_name(scheme)};
      for (auto& cell : metric_cells(r)) row.push_back(cell);
      t.add_row(std::move(row));
    }
  }
  print_table(
      "Fig. 5: impact of receiver count N (one-hop, p=0.1, 20 KB, 3 seeds)",
      t);
}

}  // namespace
}  // namespace lrs::bench

int main() {
  lrs::bench::run();
  return 0;
}
