// Figure 5(a)-(e): impact of the number of local receivers N at p = 0.1.
//
// Expected shape: Seluge's data and SNACK costs grow markedly with N (each
// extra receiver demands its exact missing packets); LR-Seluge is far less
// sensitive because any k' of n packets complete a page, so one broadcast
// burst serves everyone. The paper additionally observes Seluge's latency
// creeping up with N while LR-Seluge's slightly decreases (more requesters
// -> the first SNACK for each page fires sooner).
#include "bench/common.h"

namespace lrs::bench {
namespace {

void run(const BenchOptions& opt) {
  const std::vector<std::size_t> counts =
      opt.quick ? std::vector<std::size_t>{8, 20}
                : std::vector<std::size_t>{4, 8, 12, 16, 20, 24, 28, 32};
  std::vector<core::ExperimentConfig> configs;
  std::vector<std::vector<std::string>> prefixes;
  for (std::size_t n_recv : counts) {
    for (auto scheme : {core::Scheme::kSeluge, core::Scheme::kLrSeluge}) {
      auto cfg = paper_config(scheme);
      cfg.receivers = n_recv;
      cfg.loss_p = 0.1;
      configs.push_back(cfg);
      prefixes.push_back({format_num(static_cast<double>(n_recv)),
                          core::scheme_name(scheme)});
    }
  }
  const auto results = run_sweep(configs, opt);

  std::vector<std::string> header{"N", "scheme"};
  header.insert(header.end(), kMetricHeader.begin(), kMetricHeader.end());
  Table t(std::move(header));
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::vector<std::string> row = prefixes[i];
    for (auto& cell : metric_cells(results[i])) row.push_back(cell);
    t.add_row(std::move(row));
  }
  print_table("Fig. 5: impact of receiver count N (one-hop, p=0.1, 20 KB, " +
                  std::to_string(opt.repeats) + " seeds)",
              t);
  write_bench_json("fig5_density", t, sweep_extras(opt));
}

}  // namespace
}  // namespace lrs::bench

int main(int argc, char** argv) {
  lrs::bench::run(lrs::bench::parse_bench_options(argc, argv, 3));
  return 0;
}
