// Ablation: LR-Seluge's greedy round-robin scheduler vs serving the plain
// union of requests (Deluge's policy) on otherwise identical erasure-coded
// dissemination.
//
// The greedy scheduler stops serving each neighbor after its *distance*
// (packets still needed to decode) reaches zero instead of transmitting
// everything it asked for — the union policy over-serves because an
// LR-Seluge SNACK requests every still-useful index, of which only
// distance-many are required. Expected shape: greedy sends fewer data
// packets at every loss rate, with the gap widening as loss (and therefore
// request size) grows.
#include "bench/common.h"

namespace lrs::bench {
namespace {

void run(const BenchOptions& opt) {
  const std::vector<double> losses =
      opt.quick ? std::vector<double>{0.2}
                : std::vector<double>{0.0, 0.1, 0.2, 0.3};
  std::vector<core::ExperimentConfig> configs;
  std::vector<std::vector<std::string>> prefixes;
  for (double p : losses) {
    for (bool greedy : {true, false}) {
      auto cfg = paper_config(core::Scheme::kLrSeluge);
      cfg.params.lr_greedy_scheduler = greedy;
      cfg.loss_p = p;
      configs.push_back(cfg);
      prefixes.push_back({format_num(p, 2), greedy ? "greedy-rr" : "union"});
    }
  }
  const auto results = run_sweep(configs, opt);

  std::vector<std::string> header{"p", "scheduler"};
  header.insert(header.end(), kMetricHeader.begin(), kMetricHeader.end());
  Table t(std::move(header));
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::vector<std::string> row = prefixes[i];
    for (auto& cell : metric_cells(results[i])) row.push_back(cell);
    t.add_row(std::move(row));
  }
  print_table(
      "Ablation: greedy round-robin vs union scheduling "
      "(LR-Seluge, one-hop, N=20, " +
          std::to_string(opt.repeats) + " seeds)",
      t);
  write_bench_json("ablation_scheduler", t, sweep_extras(opt));
}

}  // namespace
}  // namespace lrs::bench

int main(int argc, char** argv) {
  lrs::bench::run(lrs::bench::parse_bench_options(argc, argv, 3));
  return 0;
}
