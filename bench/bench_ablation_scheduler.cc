// Ablation: LR-Seluge's greedy round-robin scheduler vs serving the plain
// union of requests (Deluge's policy) on otherwise identical erasure-coded
// dissemination.
//
// The greedy scheduler stops serving each neighbor after its *distance*
// (packets still needed to decode) reaches zero instead of transmitting
// everything it asked for — the union policy over-serves because an
// LR-Seluge SNACK requests every still-useful index, of which only
// distance-many are required. Expected shape: greedy sends fewer data
// packets at every loss rate, with the gap widening as loss (and therefore
// request size) grows.
#include "bench/common.h"

namespace lrs::bench {
namespace {

void run() {
  Table t({"p", "scheduler", "data_pkts", "snack_pkts", "adv_pkts",
           "total_bytes", "latency_s"});
  for (double p : {0.0, 0.1, 0.2, 0.3}) {
    for (bool greedy : {true, false}) {
      auto cfg = paper_config(core::Scheme::kLrSeluge);
      cfg.params.lr_greedy_scheduler = greedy;
      cfg.loss_p = p;
      const auto r = run_experiment_avg(cfg, 3);
      std::vector<std::string> row{format_num(p, 2),
                                   greedy ? "greedy-rr" : "union"};
      for (auto& cell : metric_cells(r)) row.push_back(cell);
      t.add_row(std::move(row));
    }
  }
  print_table(
      "Ablation: greedy round-robin vs union scheduling "
      "(LR-Seluge, one-hop, N=20, 3 seeds)",
      t);
}

}  // namespace
}  // namespace lrs::bench

int main() {
  lrs::bench::run();
  return 0;
}
