// Figure 4(a)-(e): impact of the packet-loss rate p on LR-Seluge vs Seluge.
//
// One-hop cell, N = 20 receivers, 20 KB image, losses injected per
// reception with probability p (paper §VI-B.1). The five panels are the
// five metric columns. Expected shape: both schemes' costs grow with p;
// LR-Seluge is slightly MORE expensive at p <= 0.01 (erasure redundancy
// plus per-page hash block shrink page capacity) and substantially cheaper
// for p > 0.01 — the paper reports up to ~44% lower total communication
// and ~48% lower latency.
#include "bench/common.h"

namespace lrs::bench {
namespace {

void run(const BenchOptions& opt) {
  const std::vector<double> losses =
      opt.quick ? std::vector<double>{0.1}
                : std::vector<double>{0.0, 0.01, 0.05, 0.1, 0.15,
                                      0.2, 0.3, 0.4};
  std::vector<core::ExperimentConfig> configs;
  std::vector<std::vector<std::string>> prefixes;
  for (double p : losses) {
    for (auto scheme : {core::Scheme::kSeluge, core::Scheme::kLrSeluge}) {
      auto cfg = paper_config(scheme);
      cfg.loss_p = p;
      configs.push_back(cfg);
      prefixes.push_back({format_num(p, 2), core::scheme_name(scheme)});
    }
  }
  const auto results = run_sweep(configs, opt);

  std::vector<std::string> header{"p", "scheme"};
  header.insert(header.end(), kMetricHeader.begin(), kMetricHeader.end());
  Table t(std::move(header));
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::vector<std::string> row = prefixes[i];
    for (auto& cell : metric_cells(results[i])) row.push_back(cell);
    t.add_row(std::move(row));
  }
  print_table("Fig. 4: impact of loss rate p (one-hop, N=20, 20 KB image, " +
                  std::to_string(opt.repeats) + " seeds)",
              t);
  write_bench_json("fig4_loss_rate", t, sweep_extras(opt));
}

}  // namespace
}  // namespace lrs::bench

int main(int argc, char** argv) {
  lrs::bench::run(lrs::bench::parse_bench_options(argc, argv, 3));
  return 0;
}
