// Microbenchmarks for the erasure-coding substrate: GF(256) inner loops
// across every dispatched kernel, matrix inversion, and full-page
// encode/decode for the paper's geometry (k=32, n=48, 64-byte blocks) —
// the per-page computational price of loss resilience.
//
// Besides the google-benchmark console table, the binary runs a self-timed
// sweep of kernels x (k, n, payload) and writes machine-readable results to
// BENCH_micro_erasure.json (override the path with LRS_BENCH_JSON, skip with
// LRS_BENCH_JSON=none) so successive PRs have a perf trajectory to track.
// The sweep also covers the LRC and XOR-schedule backends: encode/decode per
// geometry, the local-repair fast path, Monte Carlo local-repair hit rates
// at the Fig. 6 loss points, and the xorsched-vs-table-RS speedup row.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "erasure/code.h"
#include "erasure/gf256.h"
#include "erasure/gf256_kernels.h"
#include "core/provenance.h"
#include "erasure/matrix.h"
#include "sim/stats/stats.h"
#include "util/rng.h"

namespace {

using namespace lrs;
using namespace lrs::erasure;

std::vector<Bytes> random_blocks(std::size_t k, std::size_t len,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> blocks(k);
  for (auto& b : blocks) {
    b.resize(len);
    for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform(256));
  }
  return blocks;
}

// ---------------------------------------------------------------------------
// google-benchmark table: per-kernel addmul plus codec-level encode/decode.
// ---------------------------------------------------------------------------

void BM_Gf256Addmul(benchmark::State& state, const std::string& kernel_name,
                    std::size_t len) {
  const Gf256Kernel* kernel = gf256_find_kernel(kernel_name);
  if (kernel == nullptr) {
    state.SkipWithError("kernel unavailable on this CPU");
    return;
  }
  Bytes dst(len, 3), src(len, 7);
  for (auto _ : state) {
    kernel->addmul(dst.data(), src.data(), len, 0x8e);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}

void BM_MatrixInvert(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  MatrixGf256 m(n, n);
  do {
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        m.set(r, c, static_cast<std::uint8_t>(rng.uniform(256)));
  } while (!m.inverted().has_value());
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.inverted());
  }
}
BENCHMARK(BM_MatrixInvert)->Arg(8)->Arg(32);

void encode_bench(benchmark::State& state, CodecKind kind,
                  std::size_t delta) {
  auto code = make_code(kind, 32, 48, delta, 42);
  const auto blocks = random_blocks(32, 64, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code->encode(blocks));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          32 * 64);
}

void decode_bench(benchmark::State& state, CodecKind kind,
                  std::size_t delta) {
  auto code = make_code(kind, 32, 48, delta, 42);
  const auto blocks = random_blocks(32, 64, 3);
  const auto encoded = code->encode(blocks);
  // Worst-ish case: all parity-heavy tail shares.
  std::vector<Share> shares;
  const std::size_t take = code->decode_threshold() + 2;
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t idx = 48 - 1 - i;
    shares.push_back({idx, encoded[idx]});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(code->decode(shares));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          32 * 64);
}

void BM_RsEncode(benchmark::State& s) { encode_bench(s, CodecKind::kReedSolomon, 0); }
void BM_RsDecode(benchmark::State& s) { decode_bench(s, CodecKind::kReedSolomon, 0); }
void BM_Rlc2Encode(benchmark::State& s) { encode_bench(s, CodecKind::kRlcGf2, 2); }
void BM_Rlc2Decode(benchmark::State& s) { decode_bench(s, CodecKind::kRlcGf2, 2); }
void BM_Rlc256Encode(benchmark::State& s) { encode_bench(s, CodecKind::kRlcGf256, 1); }
void BM_Rlc256Decode(benchmark::State& s) { decode_bench(s, CodecKind::kRlcGf256, 1); }
void BM_LrcEncode(benchmark::State& s) { encode_bench(s, CodecKind::kLrc, 0); }
void BM_LrcDecode(benchmark::State& s) { decode_bench(s, CodecKind::kLrc, 0); }
void BM_XorschedEncode(benchmark::State& s) { encode_bench(s, CodecKind::kXorSchedule, 0); }
void BM_XorschedDecode(benchmark::State& s) { decode_bench(s, CodecKind::kXorSchedule, 0); }

BENCHMARK(BM_RsEncode);
BENCHMARK(BM_RsDecode);
BENCHMARK(BM_Rlc2Encode);
BENCHMARK(BM_Rlc2Decode);
BENCHMARK(BM_Rlc256Encode);
BENCHMARK(BM_Rlc256Decode);
BENCHMARK(BM_LrcEncode);
BENCHMARK(BM_LrcDecode);
BENCHMARK(BM_XorschedEncode);
BENCHMARK(BM_XorschedDecode);

void BM_LrcLocalRepairDecode(benchmark::State& state) {
  // The cheap path the LRC exists for: one data block missing, its group's
  // local parity present — repair touches 5 blocks instead of a 32-wide
  // solve.
  auto code = make_lrc_code(32, 48);
  const auto blocks = random_blocks(32, 64, 5);
  const auto encoded = code->encode(blocks);
  std::vector<Share> shares;
  for (std::size_t i = 0; i < 32; ++i)
    if (i != 6) shares.push_back({i, encoded[i]});
  shares.push_back({32 + 1, encoded[32 + 1]});  // local parity of group 1
  for (auto _ : state) {
    benchmark::DoNotOptimize(code->decode(shares));
  }
}
BENCHMARK(BM_LrcLocalRepairDecode);

void BM_SystematicFastPathDecode(benchmark::State& state) {
  auto code = make_rs_code(32, 48);
  const auto blocks = random_blocks(32, 64, 4);
  const auto encoded = code->encode(blocks);
  std::vector<Share> shares;
  for (std::size_t i = 0; i < 32; ++i) shares.push_back({i, encoded[i]});
  for (auto _ : state) {
    benchmark::DoNotOptimize(code->decode(shares));
  }
}
BENCHMARK(BM_SystematicFastPathDecode);

void BM_CodecCacheHit(benchmark::State& state) {
  make_code_cached(CodecKind::kReedSolomon, 32, 48, 0, 0);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        make_code_cached(CodecKind::kReedSolomon, 32, 48, 0, 0));
  }
}
BENCHMARK(BM_CodecCacheHit);

void BM_CodecConstructUncached(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_rs_code(32, 48));
  }
}
BENCHMARK(BM_CodecConstructUncached);

void register_kernel_benchmarks() {
  for (const auto& name : gf256_available_kernels()) {
    for (std::size_t len : {64u, 1024u}) {
      const std::string bench_name =
          "BM_Gf256Addmul/kernel=" + name + "/len=" + std::to_string(len);
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [name, len](benchmark::State& s) { BM_Gf256Addmul(s, name, len); });
    }
  }
}

// ---------------------------------------------------------------------------
// Self-timed JSON sweep: kernels x (k, n, payload) -> BENCH_micro_erasure.json
// ---------------------------------------------------------------------------

struct SweepResult {
  std::string name;
  double mb_per_s;
  double ns_per_op;
};

/// Times fn (which processes `bytes` payload bytes per call): three
/// repetitions of ~150 ms each after a calibration warmup, keeping the
/// fastest — the standard defense against scheduler/steal-time noise on
/// shared CI machines. Returns {MB/s, ns/op}.
template <typename Fn>
SweepResult time_op(const std::string& name, std::size_t bytes, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  // Warmup + iteration calibration.
  std::size_t iters = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (elapsed > 0.02 || iters > (1u << 24)) break;
    iters *= 4;
  }
  double best_ns_per_op = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    std::size_t done = 0;
    double elapsed = 0;
    do {
      for (std::size_t i = 0; i < iters; ++i) fn();
      done += iters;
      elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
    } while (elapsed < 0.15);
    const double ns_per_op = elapsed * 1e9 / static_cast<double>(done);
    if (rep == 0 || ns_per_op < best_ns_per_op) best_ns_per_op = ns_per_op;
  }
  const double mb_per_s =
      static_cast<double>(bytes) * 1e3 / best_ns_per_op;
  return {name, mb_per_s, best_ns_per_op};
}

struct SweepConfig {
  std::size_t k, n, payload;
};

std::vector<SweepResult> run_sweep() {
  std::vector<SweepResult> results;
  const SweepConfig configs[] = {
      {32, 48, 64},    // the paper's page geometry
      {16, 24, 32},    // small pages / page-0-like
      {64, 128, 256},  // scaled-up workload
  };
  const std::string active = gf256_kernel().name;
  for (const auto& name : gf256_available_kernels()) {
    if (!gf256_set_kernel(name)) continue;
    const Gf256Kernel* kernel = gf256_find_kernel(name);

    // Raw addmul at a few buffer sizes.
    for (std::size_t len : {64u, 256u, 4096u}) {
      Bytes dst(len, 3), src(len, 7);
      results.push_back(time_op(
          "gf256_addmul/kernel=" + name + "/len=" + std::to_string(len), len,
          [&] {
            kernel->addmul(dst.data(), src.data(), len, 0x8e);
            benchmark::DoNotOptimize(dst.data());
          }));
    }

    // Full RS encode + parity-heavy decode per geometry.
    for (const auto& cfg : configs) {
      const std::string suffix = "/kernel=" + name +
                                 "/k=" + std::to_string(cfg.k) +
                                 "/n=" + std::to_string(cfg.n) +
                                 "/len=" + std::to_string(cfg.payload);
      auto code = make_rs_code(cfg.k, cfg.n);
      const auto blocks = random_blocks(cfg.k, cfg.payload, 2);
      const std::size_t page_bytes = cfg.k * cfg.payload;
      results.push_back(time_op("rs_encode" + suffix, page_bytes, [&] {
        benchmark::DoNotOptimize(code->encode(blocks));
      }));

      const auto encoded = code->encode(blocks);
      std::vector<Share> shares;
      for (std::size_t i = 0; i < cfg.k; ++i) {
        const std::size_t idx = cfg.n - 1 - i;
        shares.push_back({idx, encoded[idx]});
      }
      results.push_back(time_op("rs_decode" + suffix, page_bytes, [&] {
        benchmark::DoNotOptimize(code->decode(shares));
      }));
    }
  }
  gf256_set_kernel(active);
  return results;
}

/// Codec-backend rows (PR 8): LRC and XOR-schedule encode/decode under the
/// active kernel, the LRC local-repair fast path, and Monte Carlo
/// local-repair hit rates under the Fig. 6 loss points. These run once (not
/// per kernel): the XOR schedule's paper-geometry path is register-resident
/// u64 arithmetic and LRC's hot loops go through the same dispatched addmul
/// as RS.
void append_codec_sweep(std::vector<SweepResult>& results) {
  const SweepConfig configs[] = {
      {32, 48, 64},
      {16, 24, 32},
      {64, 128, 256},
  };
  const struct {
    CodecKind kind;
    const char* name;
  } codecs[] = {
      {CodecKind::kLrc, "lrc"},
      {CodecKind::kXorSchedule, "xorsched"},
  };
  for (const auto& c : codecs) {
    for (const auto& cfg : configs) {
      const std::string suffix = "/k=" + std::to_string(cfg.k) +
                                 "/n=" + std::to_string(cfg.n) +
                                 "/len=" + std::to_string(cfg.payload);
      auto code = make_code(c.kind, cfg.k, cfg.n, 0, 0);
      const auto blocks = random_blocks(cfg.k, cfg.payload, 2);
      const std::size_t page_bytes = cfg.k * cfg.payload;
      results.push_back(
          time_op(std::string(c.name) + "_encode" + suffix, page_bytes, [&] {
            benchmark::DoNotOptimize(code->encode(blocks));
          }));

      // Parity-heavy decode at the codec's own threshold.
      const auto encoded = code->encode(blocks);
      std::vector<Share> shares;
      for (std::size_t i = 0; i < code->decode_threshold(); ++i) {
        const std::size_t idx = cfg.n - 1 - i;
        shares.push_back({idx, encoded[idx]});
      }
      results.push_back(
          time_op(std::string(c.name) + "_decode" + suffix, page_bytes, [&] {
            benchmark::DoNotOptimize(code->decode(shares));
          }));
    }
  }

  // LRC local-repair fast path at the paper geometry: one erased data block
  // repaired from its group alone.
  {
    auto code = make_lrc_code(32, 48);
    const auto blocks = random_blocks(32, 64, 5);
    const auto encoded = code->encode(blocks);
    std::vector<Share> shares;
    for (std::size_t i = 0; i < 32; ++i)
      if (i != 6) shares.push_back({i, encoded[i]});
    shares.push_back({32 + 1, encoded[32 + 1]});
    results.push_back(
        time_op("lrc_decode_local_repair/k=32/n=48/len=64", 32 * 64, [&] {
          benchmark::DoNotOptimize(code->decode(shares));
        }));
  }
}

/// Monte Carlo local-repair hit rate: i.i.d. packet loss at the Fig. 6
/// points, decode from the survivors, count how often the page completed
/// without a k-wide solve. The counters live in the process-wide metrics
/// registry, so each loss point resets them before its trial loop.
void append_local_repair_rates(std::vector<SweepResult>& results) {
  stats::set_enabled(true);
  const struct {
    double p;
    const char* label;
  } losses[] = {{0.05, "0.05"}, {0.1, "0.1"}, {0.2, "0.2"}};
  for (const auto& loss : losses) {
    auto code = make_lrc_code(32, 48);
    lrc_stats_reset(*code);
    const auto blocks = random_blocks(32, 64, 6);
    const auto encoded = code->encode(blocks);
    Rng rng(static_cast<std::uint64_t>(loss.p * 1000) + 9);
    const int trials = 2000;
    for (int t = 0; t < trials; ++t) {
      std::vector<Share> shares;
      for (std::size_t i = 0; i < 48; ++i) {
        if (rng.uniform(10000) < static_cast<std::size_t>(loss.p * 10000))
          continue;
        shares.push_back({i, encoded[i]});
      }
      benchmark::DoNotOptimize(code->decode(shares));
    }
    const auto st = lrc_stats(*code);
    const double rate =
        st->decodes == 0
            ? 0.0
            : static_cast<double>(st->local_only_decodes) /
                  static_cast<double>(st->decodes);
    results.push_back({"lrc_local_repair_rate/p=" + std::string(loss.label) +
                           "/k=32/n=48",
                       rate, static_cast<double>(st->decodes)});
  }
}

/// Speedup rows: the fastest available kernel vs the reference oracle for
/// the paper config — the acceptance metric this bench exists to
/// demonstrate. "Fastest" is empirical (best measured MB/s per op), not
/// positional, so one noisy measurement window cannot misreport the ISA
/// ranking.
void append_speedups(std::vector<SweepResult>& results) {
  for (const char* op : {"rs_encode", "rs_decode", "gf256_addmul"}) {
    const std::string key = std::string(op) == "gf256_addmul"
                                ? std::string(op) + "/kernel=%s/len=64"
                                : std::string(op) + "/kernel=%s/k=32/n=48/len=64";
    auto find = [&](const std::string& kernel) -> const SweepResult* {
      std::string want = key;
      want.replace(want.find("%s"), 2, kernel);
      for (const auto& r : results) {
        if (r.name == want) return &r;
      }
      return nullptr;
    };
    const SweepResult* ref = find("ref");
    if (ref == nullptr || ref->mb_per_s <= 0) continue;
    const SweepResult* best = nullptr;
    std::string best_name;
    for (const auto& kernel : gf256_available_kernels()) {
      if (kernel == "ref") continue;
      const SweepResult* r = find(kernel);
      if (r != nullptr && (best == nullptr || r->mb_per_s > best->mb_per_s)) {
        best = r;
        best_name = kernel;
      }
    }
    if (best == nullptr) continue;
    results.push_back({std::string(op) + "/speedup/" + best_name + "_vs_ref",
                       best->mb_per_s / ref->mb_per_s, 0.0});
  }

  // Acceptance row for the XOR-schedule backend: its compiled encode against
  // table-kernel RS at the paper geometry (the SIMD kernels are a separate
  // axis already covered by the rows above).
  auto find_exact = [&](const std::string& want) -> const SweepResult* {
    for (const auto& r : results) {
      if (r.name == want) return &r;
    }
    return nullptr;
  };
  const SweepResult* rs_table =
      find_exact("rs_encode/kernel=table/k=32/n=48/len=64");
  const SweepResult* xs = find_exact("xorsched_encode/k=32/n=48/len=64");
  if (rs_table != nullptr && xs != nullptr && rs_table->mb_per_s > 0) {
    results.push_back({"xorsched_encode/speedup/xorsched_vs_rs_table",
                       xs->mb_per_s / rs_table->mb_per_s, 0.0});
  }
}

void write_json(const std::vector<SweepResult>& results,
                const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "could not open " << path << " for writing\n";
    return;
  }
  out << "{\n  \"benchmark\": \"bench_micro_erasure\",\n"
      << "  \"provenance\": " << core::provenance_json("  ") << ",\n"
      << "  \"active_kernel\": \"" << gf256_kernel().name << "\",\n"
      << "  \"kernels\": [";
  const auto names = gf256_available_kernels();
  for (std::size_t i = 0; i < names.size(); ++i)
    out << (i ? ", " : "") << '"' << names[i] << '"';
  out << "],\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", ";
    if (r.name.find("/speedup/") != std::string::npos) {
      out << "\"speedup\": " << r.mb_per_s;
    } else if (r.name.find("_rate/") != std::string::npos) {
      // Monte Carlo rows: ns_per_op carries the sample count.
      out << "\"rate\": " << r.mb_per_s
          << ", \"decodes\": " << static_cast<std::size_t>(r.ns_per_op);
    } else {
      out << "\"mb_per_s\": " << r.mb_per_s
          << ", \"ns_per_op\": " << r.ns_per_op;
    }
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << results.size() << " sweep results to " << path
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  register_kernel_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const char* env = std::getenv("LRS_BENCH_JSON");
  const std::string path =
      env != nullptr && env[0] != '\0' ? env : "BENCH_micro_erasure.json";
  if (path == "none") return 0;
  auto results = run_sweep();
  append_codec_sweep(results);
  append_local_repair_rates(results);
  append_speedups(results);
  write_json(results, path);
  return 0;
}
