// Microbenchmarks for the erasure-coding substrate: GF(256) inner loops,
// matrix inversion, and full-page encode/decode for the paper's geometry
// (k=32, n=48, 64-byte blocks) across all three codecs — the per-page
// computational price of loss resilience.
#include <benchmark/benchmark.h>

#include <numeric>

#include "erasure/code.h"
#include "erasure/gf256.h"
#include "erasure/matrix.h"
#include "util/rng.h"

namespace {

using namespace lrs;
using namespace lrs::erasure;

std::vector<Bytes> random_blocks(std::size_t k, std::size_t len,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> blocks(k);
  for (auto& b : blocks) {
    b.resize(len);
    for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform(256));
  }
  return blocks;
}

void BM_Gf256Addmul(benchmark::State& state) {
  Bytes dst(1024, 3), src(1024, 7);
  for (auto _ : state) {
    Gf256::addmul(MutByteView(dst.data(), dst.size()), view(src), 0x8e);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_Gf256Addmul);

void BM_MatrixInvert(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  MatrixGf256 m(n, n);
  do {
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        m.set(r, c, static_cast<std::uint8_t>(rng.uniform(256)));
  } while (!m.inverted().has_value());
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.inverted());
  }
}
BENCHMARK(BM_MatrixInvert)->Arg(8)->Arg(32);

struct CodecCase {
  CodecKind kind;
  std::size_t delta;
};

void encode_bench(benchmark::State& state, CodecKind kind,
                  std::size_t delta) {
  auto code = make_code(kind, 32, 48, delta, 42);
  const auto blocks = random_blocks(32, 64, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code->encode(blocks));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          32 * 64);
}

void decode_bench(benchmark::State& state, CodecKind kind,
                  std::size_t delta) {
  auto code = make_code(kind, 32, 48, delta, 42);
  const auto blocks = random_blocks(32, 64, 3);
  const auto encoded = code->encode(blocks);
  // Worst-ish case: all parity-heavy tail shares.
  std::vector<Share> shares;
  const std::size_t take = code->decode_threshold() + 2;
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t idx = 48 - 1 - i;
    shares.push_back({idx, encoded[idx]});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(code->decode(shares));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          32 * 64);
}

void BM_RsEncode(benchmark::State& s) { encode_bench(s, CodecKind::kReedSolomon, 0); }
void BM_RsDecode(benchmark::State& s) { decode_bench(s, CodecKind::kReedSolomon, 0); }
void BM_Rlc2Encode(benchmark::State& s) { encode_bench(s, CodecKind::kRlcGf2, 2); }
void BM_Rlc2Decode(benchmark::State& s) { decode_bench(s, CodecKind::kRlcGf2, 2); }
void BM_Rlc256Encode(benchmark::State& s) { encode_bench(s, CodecKind::kRlcGf256, 1); }
void BM_Rlc256Decode(benchmark::State& s) { decode_bench(s, CodecKind::kRlcGf256, 1); }

BENCHMARK(BM_RsEncode);
BENCHMARK(BM_RsDecode);
BENCHMARK(BM_Rlc2Encode);
BENCHMARK(BM_Rlc2Decode);
BENCHMARK(BM_Rlc256Encode);
BENCHMARK(BM_Rlc256Decode);

void BM_SystematicFastPathDecode(benchmark::State& state) {
  auto code = make_rs_code(32, 48);
  const auto blocks = random_blocks(32, 64, 4);
  const auto encoded = code->encode(blocks);
  std::vector<Share> shares;
  for (std::size_t i = 0; i < 32; ++i) shares.push_back({i, encoded[i]});
  for (auto _ : state) {
    benchmark::DoNotOptimize(code->decode(shares));
  }
}
BENCHMARK(BM_SystematicFastPathDecode);

}  // namespace

BENCHMARK_MAIN();
