// Simulator-core throughput trajectory (ISSUE 6 tentpole, extended with
// the ISSUE 7 island rungs).
//
// Runs the scale ladder — the paper's two 225-node grids, the cells-1k
// island-executor rung, the 2000- and 10000-node geometric deployments and
// the 100000-node cells fleet — through the deterministic trial runner and
// reports events/sec and peak RSS alongside the protocol metrics. Invariant probing and tracing are forced off so the
// harness prices exactly the event core plus the protocol work, nothing
// else.
//
//   ./bench_scale                 # full ladder (225 / 225 / 1k / 2k / 10k / 100k)
//   ./bench_scale --quick         # CI tier: the grids + cells-1k + geo-2k
//   ./bench_scale --scales=geo-10k
//
// Flags: --repeats=R (override each scenario's trial block), --jobs=J,
// --scenario-dir=D (default scenarios/), --list, --metrics=M.json
// [--metrics-heartbeat=S] (runtime metrics export, bench/common.h), and the
// regression gate: --baseline=BENCH_scale.json [--gate=0.20] compares
// events/sec per ladder row against a previous artifact and exits 1 when
// any row regressed more than the gate fraction.
//
// Column contract (docs/performance.md): every column up to and including
// "expected" is a pure function of (scenario, seed) and must be
// byte-identical for any worker count — CI diffs them serial vs LRS_JOBS.
// That includes the island-executor columns: "islands" is the radio-island
// count and "imbalance" the max/mean per-island event-load ratio (1.0 for
// single-island rungs), both derived from deterministic event counts.
// The trailing wall_s / events_per_sec / peak_rss_mb columns are
// machine-dependent timing and are excluded from determinism comparisons.
// peak_rss_mb is per rung: the kernel's RSS high-water mark is reset
// (/proc/self/clear_refs) before each scenario and read back at KiB
// resolution (VmHWM, printed with matching precision), so small rungs no
// longer inherit — and tie at — the process-lifetime maximum of whatever
// ran before them.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "core/run_trials.h"
#include "sim/scenario/scenario.h"
#include "util/args.h"
#include "util/csv.h"

namespace lrs {
namespace {

/// The ladder, smallest to largest. cells-1k and geo-100k run through the
/// island executor (islands = true in their trial blocks): one base per
/// radio-isolated cell, simulated island-by-island on LRS_JOBS workers.
const std::vector<std::string> kLadder = {
    "grid15x15-tight", "grid15x15-medium", "cells-1k",
    "geo-2k",          "geo-10k",          "geo-100k"};
const std::vector<std::string> kQuickLadder = {
    "grid15x15-tight", "grid15x15-medium", "cells-1k", "geo-2k"};

/// Resets the kernel's RSS high-water mark ("5" into /proc/self/clear_refs,
/// proc(5)) so the next peak_rss_mb() call reports this rung's own peak
/// rather than the process-lifetime maximum. Best-effort: a no-op on
/// kernels without the file, where rows fall back to the monotonic maximum.
void reset_peak_rss() {
  std::ofstream f("/proc/self/clear_refs");
  if (f) f << "5";
}

/// Peak RSS in MiB at KiB resolution: VmHWM from /proc/self/status (the
/// value reset_peak_rss clears), falling back to getrusage's ru_maxrss.
double peak_rss_mb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      try {
        return std::stod(line.substr(6)) / 1024.0;  // KiB -> MiB
      } catch (...) {
        break;
      }
    }
  }
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

std::vector<std::string> split_csv_list(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// Minimal reader for the BENCH_scale.json we write ourselves (bench/
/// common.h write_bench_json format): extracts column names and row cells.
/// Good enough for the regression gate; not a general JSON parser.
struct BenchDoc {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
};

std::vector<std::string> parse_bracket_list(const std::string& line) {
  std::vector<std::string> cells;
  const auto open = line.find('[');
  const auto close = line.rfind(']');
  if (open == std::string::npos || close == std::string::npos || close <= open)
    return cells;
  std::string cell;
  bool in_string = false;
  for (std::size_t i = open + 1; i < close; ++i) {
    const char c = line[i];
    if (c == '"') {
      in_string = !in_string;
      continue;
    }
    if (c == ',' && !in_string) {
      cells.push_back(cell);
      cell.clear();
      continue;
    }
    if (!in_string && (c == ' ' || c == '\t')) continue;
    cell.push_back(c);
  }
  cells.push_back(cell);
  return cells;
}

std::optional<BenchDoc> load_bench_doc(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  BenchDoc doc;
  std::string line;
  bool in_rows = false;
  while (std::getline(in, line)) {
    if (line.find("\"columns\"") != std::string::npos) {
      doc.columns = parse_bracket_list(line);
    } else if (line.find("\"rows\"") != std::string::npos) {
      in_rows = true;
    } else if (in_rows && line.find('[') != std::string::npos) {
      doc.rows.push_back(parse_bracket_list(line));
    } else if (in_rows && line.find(']') != std::string::npos) {
      in_rows = false;
    }
  }
  if (doc.columns.empty()) return std::nullopt;
  return doc;
}

std::optional<double> doc_cell(const BenchDoc& doc, const std::string& scenario,
                               const std::string& column) {
  std::size_t name_col = doc.columns.size(), want_col = doc.columns.size();
  for (std::size_t c = 0; c < doc.columns.size(); ++c) {
    if (doc.columns[c] == "scenario") name_col = c;
    if (doc.columns[c] == column) want_col = c;
  }
  if (name_col == doc.columns.size() || want_col == doc.columns.size())
    return std::nullopt;
  for (const auto& row : doc.rows) {
    if (row.size() <= std::max(name_col, want_col)) continue;
    if (row[name_col] != scenario) continue;
    try {
      return std::stod(row[want_col]);
    } catch (...) {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

int run(int argc, char** argv) {
  Args args(argc, argv);
  const bool quick = args.get_bool("quick", false);
  const bool list_only = args.get_bool("list", false);
  const long repeats_flag = args.get_int("repeats", 0);  // 0 = per-scenario
  const long jobs_flag = args.get_int("jobs", 0);
  const std::string dir = args.get("scenario-dir", "scenarios");
  const std::string scales_flag = args.get("scales", "");
  const std::string baseline_path = args.get("baseline", "");
  const double gate = args.get_double("gate", 0.20);
  const std::string metrics = args.get("metrics", "");
  const double metrics_heartbeat = args.get_double("metrics-heartbeat", 0.0);

  bool bad = repeats_flag < 0 || jobs_flag < 0 || gate < 0.0 || gate >= 1.0;
  if (metrics_heartbeat < 0 || (metrics_heartbeat > 0 && metrics.empty())) {
    std::cerr << "error: --metrics-heartbeat needs --metrics=FILE and a"
                 " positive period\n";
    bad = true;
  }
  for (const auto& e : args.errors()) {
    std::cerr << "error: " << e << "\n";
    bad = true;
  }
  for (const auto& u : args.unknown()) {
    std::cerr << "error: unknown flag " << u << "\n";
    bad = true;
  }
  if (!args.positional().empty()) {
    std::cerr << "error: bench_scale takes no positional arguments\n";
    bad = true;
  }
  if (bad) {
    std::cerr << "usage: " << argv[0]
              << " [--quick] [--scales=a,b] [--repeats=R] [--jobs=J]"
                 " [--scenario-dir=D] [--baseline=F.json] [--gate=0.20]"
                 " [--metrics=M.json] [--metrics-heartbeat=S] [--list]\n";
    return 2;
  }
  bench::arm_metrics_export(metrics, metrics_heartbeat);

  const std::vector<std::string> ladder =
      !scales_flag.empty() ? split_csv_list(scales_flag)
      : quick              ? kQuickLadder
                           : kLadder;

  std::vector<scenario::Scenario> library;
  for (const auto& name : ladder) {
    const std::string path = dir + "/" + name + ".scn";
    std::string error;
    auto s = scenario::load_scenario_file(path, &error);
    if (!s) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    library.push_back(std::move(*s));
  }

  if (list_only) {
    Table listing({"scenario", "topology", "nodes", "repeats"});
    for (const auto& s : library) {
      listing.add_row({s.name, sim::topology_kind_name(s.topo.kind),
                       std::to_string(s.topo.node_count()),
                       std::to_string(s.repeats)});
    }
    bench::print_table("scale ladder", listing);
    return 0;
  }

  Table table({"scenario", "nodes", "mean_degree", "repeats", "events",
               "data_pkts", "snack_pkts", "adv_pkts", "total_bytes",
               "recv_bytes", "latency_s", "min_completed", "islands",
               "imbalance", "expected", "wall_s", "events_per_sec",
               "peak_rss_mb"});
  bool all_complete = true;

  for (const auto& s : library) {
    core::ExperimentConfig config = scenario::scenario_config(s);
    // Throughput run: no invariant probes, no tracing — the row prices the
    // event core plus protocol work only.
    config.check_invariants = false;
    config.trace = sim::TraceExportConfig{};
    const std::size_t repeats =
        repeats_flag > 0 ? static_cast<std::size_t>(repeats_flag) : s.repeats;

    // mean_degree is a pure function of the (deterministic) placement; it
    // documents what "nodes" means radio-wise at this rung of the ladder.
    const double degree = sim::build_topology(config.topo_spec).mean_degree();

    reset_peak_rss();
    const auto t0 = std::chrono::steady_clock::now();
    const auto trials = core::run_trials(config, repeats,
                                         static_cast<std::size_t>(jobs_flag));
    const auto t1 = std::chrono::steady_clock::now();
    const double wall =
        std::chrono::duration<double>(t1 - t0).count();

    const auto avg = core::aggregate_trials(trials);
    std::uint64_t events = 0;
    std::size_t min_completed = trials.empty() ? 0 : trials[0].completed;
    for (const auto& r : trials) {
      events += r.events_executed;
      min_completed = std::min(min_completed, r.completed);
    }
    if (min_completed < s.expected_complete()) {
      all_complete = false;
      std::cerr << "FAIL " << s.name << ": " << min_completed << "/"
                << s.expected_complete() << " expected receivers finished\n";
    }

    // Deterministic load attribution for the island-executor rungs:
    // max/mean per-island event-load ratio, exactly 1.0 when the rung runs
    // the classic single-simulator path. Both factors are trial sums, so
    // the ratio is the trial-weighted imbalance.
    const double imbalance =
        avg.events_executed == 0
            ? 1.0
            : static_cast<double>(avg.max_island_events) *
                  static_cast<double>(avg.islands) /
                  static_cast<double>(avg.events_executed);

    table.add_row({s.name, std::to_string(s.topo.node_count()),
                   format_num(degree, 1), std::to_string(repeats),
                   std::to_string(events),
                   format_num(static_cast<double>(avg.data_packets)),
                   format_num(static_cast<double>(avg.snack_packets)),
                   format_num(static_cast<double>(avg.adv_packets)),
                   format_num(static_cast<double>(avg.total_bytes)),
                   format_num(static_cast<double>(avg.received_bytes)),
                   format_num(avg.latency_s, 1),
                   std::to_string(min_completed),
                   std::to_string(avg.islands),
                   format_num(imbalance, 3),
                   std::to_string(s.expected_complete()),
                   format_num(wall, 3),
                   format_num(static_cast<double>(events) / wall),
                   format_num(peak_rss_mb(), 3)});
  }

  bench::print_table("simulator scale ladder", table);

  std::vector<std::pair<std::string, std::string>> extras = {
      {"quick", quick ? "true" : "false"},
      {"jobs", std::to_string(jobs_flag)}};
  bench::write_bench_json("scale", table, extras);

  int rc = all_complete ? 0 : 1;
  if (!baseline_path.empty()) {
    const auto doc = load_bench_doc(baseline_path);
    if (!doc) {
      std::cerr << "error: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    for (std::size_t i = 0; i < library.size(); ++i) {
      const std::string& name = library[i].name;
      const auto before = doc_cell(*doc, name, "events_per_sec");
      if (!before) {
        std::cout << "gate: " << name << " not in baseline, skipped\n";
        continue;
      }
      const auto& row = table.row_data()[i];
      const double now = std::stod(row[row.size() - 2]);  // events_per_sec
      const double floor = *before * (1.0 - gate);
      const bool ok = now >= floor;
      std::cout << "gate: " << name << " events/sec " << format_num(now)
                << " vs baseline " << format_num(*before) << " (floor "
                << format_num(floor) << ") -> " << (ok ? "ok" : "REGRESSED")
                << "\n";
      if (!ok) rc = 1;
    }
  }
  return rc;
}

}  // namespace
}  // namespace lrs

int main(int argc, char** argv) { return lrs::run(argc, argv); }
