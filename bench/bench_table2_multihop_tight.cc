// Table II: multi-hop dissemination over the high-density 15x15 grid
// (the paper's 15-15-tight-mica2-grid.txt topology) with heavy bursty RF
// noise (our Gilbert-Elliott substitute for the meyer-heavy.txt trace —
// see DESIGN.md). 225 nodes, base station in a corner, 20 KB image.
//
// Expected shape: LR-Seluge beats Seluge on every metric by significant
// margins — dense neighborhoods maximize the value of fungible encoded
// packets (one burst serves many neighbors with different loss patterns).
#include "bench/common.h"

namespace lrs::bench {
namespace {

void run(const BenchOptions& opt) {
  std::vector<core::ExperimentConfig> configs;
  std::vector<std::string> names;
  for (auto scheme : {core::Scheme::kSeluge, core::Scheme::kLrSeluge}) {
    auto cfg = paper_config(scheme);
    cfg.topo = core::ExperimentConfig::Topo::kGrid;
    // --quick shrinks the grid: the full 15x15 run is minutes-long.
    cfg.grid_rows = opt.quick ? 5 : 15;
    cfg.grid_cols = opt.quick ? 5 : 15;
    cfg.grid_spacing = 10.0;  // tight: many strong links per node
    cfg.gilbert_elliott = true;  // heavy bursty noise
    cfg.time_limit = 3600LL * sim::kSecond;
    configs.push_back(cfg);
    names.push_back(core::scheme_name(scheme));
  }
  const auto results = run_sweep(configs, opt);

  std::vector<std::string> header{"scheme", "completed_nodes"};
  header.insert(header.end(), kMetricHeader.begin(), kMetricHeader.end());
  header.push_back("radio_energy_j");
  Table t(std::move(header));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::vector<std::string> row{
        names[i], format_num(static_cast<double>(r.completed)) + "/" +
                      format_num(static_cast<double>(r.receivers))};
    for (auto& cell : metric_cells(r)) row.push_back(cell);
    row.push_back(format_num(
        (r.tx_energy_mj + r.rx_energy_mj + r.listen_energy_mj) / 1000.0, 1));
    t.add_row(std::move(row));
  }
  print_table("Table II: " + std::string(opt.quick ? "5x5" : "15x15") +
                  " tight grid (heavy noise, 20 KB, " +
                  std::to_string(opt.repeats) + " seeds)",
              t);
  write_bench_json("table2_multihop_tight", t, sweep_extras(opt));
}

}  // namespace
}  // namespace lrs::bench

int main(int argc, char** argv) {
  lrs::bench::run(lrs::bench::parse_bench_options(argc, argv, 2));
  return 0;
}
