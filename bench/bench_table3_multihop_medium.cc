// Table III: multi-hop dissemination over the low-density 15x15 grid
// (the paper's 15-15-medium-mica2-grid.txt topology) with heavy bursty RF
// noise. Wider spacing means fewer, weaker links: more hops, more gray-
// zone losses, higher absolute costs for both schemes — with LR-Seluge
// still ahead on every metric.
#include "bench/common.h"

namespace lrs::bench {
namespace {

void run() {
  Table t({"scheme", "completed", "data_pkts", "snack_pkts", "adv_pkts",
           "total_bytes", "latency_s", "radio_energy_j"});
  for (auto scheme : {core::Scheme::kSeluge, core::Scheme::kLrSeluge}) {
    auto cfg = paper_config(scheme);
    cfg.topo = core::ExperimentConfig::Topo::kGrid;
    cfg.grid_rows = 15;
    cfg.grid_cols = 15;
    cfg.grid_spacing = 20.0;  // medium: sparser, weaker links
    cfg.gilbert_elliott = true;
    cfg.time_limit = 3600LL * sim::kSecond;
    const auto r = run_experiment_avg(cfg, 2);
    std::vector<std::string> row{
        core::scheme_name(scheme),
        format_num(static_cast<double>(r.completed)) + "/" +
            format_num(static_cast<double>(r.receivers))};
    for (auto& cell : metric_cells(r)) row.push_back(cell);
    row.push_back(format_num(
        (r.tx_energy_mj + r.rx_energy_mj + r.listen_energy_mj) / 1000.0, 1));
    t.add_row(std::move(row));
  }
  print_table(
      "Table III: 15x15 medium grid (225 nodes, heavy noise, 20 KB, 2 seeds)",
      t);
}

}  // namespace
}  // namespace lrs::bench

int main() {
  lrs::bench::run();
  return 0;
}
