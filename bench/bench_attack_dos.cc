// Security experiment (paper §IV-E claims): DoS resilience under forged
// traffic, and the contrast with the unauthenticated Deluge baseline.
//
// Scenarios (one-hop cell, 4 honest receivers + 1 attacker, error-free
// links so every forged packet lands):
//  * baseline        — no attacker.
//  * data-flood      — forged data packets every 15 ms. LR-Seluge must
//                      finish with byte-exact images; every forged packet
//                      costs exactly one hash (never a signature, never
//                      buffer space).
//  * sig-flood       — forged signature packets without valid puzzles:
//                      rejected by a single hash, signature verifications
//                      stay at one per node.
//  * sig-flood+work  — the attacker solves the puzzles (2^strength hashes
//                      per packet); receivers now burn signature checks
//                      but integrity still holds.
//  * deluge-data-flood — the same data flood against Deluge: forged
//                      payloads are stored and recovered images corrupt.
#include <iostream>

#include "attack/adversary.h"
#include "bench/common.h"
#include "core/lr_image.h"
#include "crypto/wots.h"
#include "proto/deluge.h"
#include "proto/sluice.h"
#include "proto/engine.h"

namespace lrs::bench {
namespace {

using attack::InjectorConfig;
using attack::InjectorNode;

struct Outcome {
  bool complete = false;
  bool intact = false;
  std::uint64_t injected = 0;
  std::uint64_t auth_failures = 0;
  std::uint64_t hash_ops = 0;
  std::uint64_t sig_verifies = 0;
  std::uint64_t puzzle_rejects = 0;
  double latency_s = 0.0;
};

enum class Victim { kLrSeluge, kDeluge, kSluice };

Outcome run_scenario(Victim victim, bool with_attacker, bool forge_data,
                     bool forge_sigs, bool solve_puzzles,
                     const sim::TraceExportConfig& trace = {}) {
  proto::CommonParams params;
  params.payload_size = 64;
  params.k = 16;
  params.n = 24;
  params.k0 = 8;
  params.n0 = 16;
  params.puzzle_strength = 10;

  const std::size_t kReceivers = 4;
  const Bytes image = core::make_test_image(8 * 1024, 77);
  crypto::MultiKeySigner signer(view(Bytes{9, 9}), 2);

  auto make_state = [&](bool base) -> std::unique_ptr<proto::SchemeState> {
    switch (victim) {
      case Victim::kDeluge:
        return base ? proto::make_deluge_source(params, image)
                    : proto::make_deluge_receiver(params, image.size());
      case Victim::kSluice:
        return base
                   ? proto::make_sluice_source(params, image, signer)
                   : proto::make_sluice_receiver(params,
                                                 signer.root_public_key());
      case Victim::kLrSeluge:
        return base ? core::make_lr_source(params, image, signer)
                    : core::make_lr_receiver(params,
                                             signer.root_public_key());
    }
    return nullptr;
  };

  sim::Simulator simulator(
      sim::Topology::star(kReceivers + (with_attacker ? 1 : 0)),
      sim::make_perfect_channel(), sim::RadioParams{}, 5);

  proto::EngineConfig cfg;
  cfg.timing.trickle.tau_low = 1 * sim::kSecond;
  cfg.timing.trickle.tau_high = 60 * sim::kSecond;
  const Bytes key =
      victim == Victim::kDeluge ? Bytes{} : params.cluster_key;

  std::vector<proto::DissemNode*> nodes;
  cfg.is_base_station = true;
  nodes.push_back(
      &simulator.add_node<proto::DissemNode>(make_state(true), cfg, key));
  cfg.is_base_station = false;
  for (std::size_t i = 0; i < kReceivers; ++i) {
    nodes.push_back(
        &simulator.add_node<proto::DissemNode>(make_state(false), cfg, key));
  }

  InjectorNode* attacker = nullptr;
  if (with_attacker) {
    InjectorConfig icfg;
    icfg.version = params.version;
    icfg.period = 15 * sim::kMillisecond;
    icfg.forge_data = forge_data;
    icfg.data_pages = 6;
    icfg.data_indices = params.n;
    icfg.data_payload_size = params.payload_size;
    icfg.forge_signatures = forge_sigs;
    icfg.solve_puzzles = solve_puzzles;
    icfg.puzzle_strength = params.puzzle_strength;
    attacker = &simulator.add_node<InjectorNode>(icfg);
  }

  std::unique_ptr<sim::TraceRecorder> tracer;
  if (trace.enabled()) {
    tracer = std::make_unique<sim::TraceRecorder>();
    simulator.add_observer(tracer.get());
  }

  const auto done = [&] {
    for (std::size_t i = 1; i <= kReceivers; ++i) {
      if (!nodes[i]->image_complete()) return false;
    }
    return true;
  };
  simulator.run(900LL * sim::kSecond, done);
  if (tracer) {
    sim::export_trace(*tracer, trace,
                      kReceivers + 1 + (with_attacker ? 1 : 0));
  }

  Outcome out;
  out.complete = done();
  out.intact = out.complete;
  for (std::size_t i = 1; i <= kReceivers && out.intact; ++i) {
    if (nodes[i]->scheme().assemble_image() != image) out.intact = false;
  }
  out.injected = attacker ? attacker->injected() : 0;
  const auto& m = simulator.metrics();
  out.auth_failures = m.total_auth_failures();
  out.hash_ops = m.total_hash_verifications();
  out.sig_verifies = m.total_signature_verifications();
  for (NodeId i = 1; i <= kReceivers; ++i)
    out.puzzle_rejects += m.node(i).puzzle_rejections;
  out.latency_s = sim::to_seconds(m.last_completion());
  return out;
}

void run(const BenchOptions& opt) {
  Table t({"scenario", "complete", "images_intact", "injected",
           "auth_failures", "hash_ops", "sig_verifies", "puzzle_rejects",
           "latency_s"});
  struct Scenario {
    const char* name;
    Victim victim;
    bool attacker, data, sigs, solve;
  };
  const Scenario scenarios[] = {
      {"lr/baseline", Victim::kLrSeluge, false, false, false, false},
      {"lr/data-flood", Victim::kLrSeluge, true, true, false, false},
      {"lr/sig-flood", Victim::kLrSeluge, true, false, true, false},
      {"lr/sig-flood+work", Victim::kLrSeluge, true, false, true, true},
      {"sluice/baseline", Victim::kSluice, false, false, false, false},
      {"sluice/data-flood", Victim::kSluice, true, true, false, false},
      {"deluge/baseline", Victim::kDeluge, false, false, false, false},
      {"deluge/data-flood", Victim::kDeluge, true, true, false, false},
  };
  // --trace/--timeseries record the lr/data-flood scenario — the one whose
  // auth-failure event stream the trace is for.
  std::size_t index = 0;
  for (const auto& s : scenarios) {
    const bool traced = index++ == 1;
    const Outcome o =
        run_scenario(s.victim, s.attacker, s.data, s.sigs, s.solve,
                     traced ? trace_config(opt) : sim::TraceExportConfig{});
    t.add_row({s.name, o.complete ? "yes" : "NO", o.intact ? "yes" : "NO",
               format_num(static_cast<double>(o.injected)),
               format_num(static_cast<double>(o.auth_failures)),
               format_num(static_cast<double>(o.hash_ops)),
               format_num(static_cast<double>(o.sig_verifies)),
               format_num(static_cast<double>(o.puzzle_rejects)),
               format_num(o.latency_s, 1)});
  }
  print_table("Attack resilience: forged traffic vs dissemination", t);
  write_bench_json("attack_dos", t,
                   {{"receivers", "4"}, {"seed", "5"}, {"image_kb", "8"}});
  std::cout << "\nReading guide: lr/* scenarios must complete with intact\n"
               "images; forged data costs one hash each (auth_failures),\n"
               "forged signatures die at the puzzle check unless the\n"
               "attacker spends 2^strength work, and even then integrity\n"
               "holds. sluice/data-flood shows deferred (page-level)\n"
               "authentication melting down: poisoned pages are discarded\n"
               "wholesale and dissemination crawls or stalls (the paper's\n"
               "S VII critique). deluge/data-flood shows the unauthenticated\n"
               "baseline accepting forged payloads outright.\n";
}

}  // namespace
}  // namespace lrs::bench

int main(int argc, char** argv) {
  lrs::bench::run(lrs::bench::parse_bench_options(argc, argv, 1));
  return 0;
}
