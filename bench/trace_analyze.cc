// Trace summarizer and schema checker for the JSONL event logs written by
// --trace= (sim/trace.h; format spec in docs/observability.md).
//
//   ./bench/trace_analyze t.jsonl              # human-readable summary
//   ./bench/trace_analyze --check t.jsonl      # CI schema validation
//
// The summary answers the questions end-of-run aggregates cannot: which
// node finished last and why (per-node latency breakdown), what the serve
// scheduler actually chose (page popularity histogram, top-k retransmitted
// packet indices) and how control traffic evolved against data traffic
// (SNACK/data ratio per time bucket).
//
// --check validates every line against the schema the tests pin: it must
// parse as a known event, re-serialize byte-identically (so the file was
// produced by, not merely resembles, TraceEvent::to_jsonl) and carry a
// non-decreasing timestamp. Exit 0 on success, 1 on the first violation.
//
// --metrics-check=M.json validates a --metrics export (sim/stats,
// "lrs-metrics-v1"): schema tag and section layout, histogram invariants
// (count equals the bucket total, canonical strictly-increasing bucket
// bounds, min/max land in the first/last occupied bucket) and the
// counter cross-check sim.queue.pop == core.events_executed. With a
// trace JSONL as the positional argument it also cross-checks
// sim.trace.events against the trace's line count — the two files must
// come from the same run:
//
//   ./bench/trace_analyze --metrics-check=m.json [t.jsonl]
//
// --fleet-check=BENCH_fleet.json validates a bench_fleet export: the
// pinned 21-column schema, u64 exactness for every integer column,
// "X/Y" convergence ratios, imbalance >= 1, at least one delta tenant,
// timing columns confined to ALL rows, and per-rung ALL rows that are
// exact folds (sum/max) of their tenant rows:
//
//   ./bench/trace_analyze --fleet-check=BENCH_fleet.json
#include <algorithm>
#include <array>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "sim/stats/stats.h"
#include "sim/trace.h"
#include "util/args.h"
#include "util/csv.h"

namespace lrs {
namespace {

using sim::TraceEvent;
using sim::TraceEventType;

int check(const std::string& path, const std::vector<std::string>& lines) {
  sim::SimTime prev = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto& line = lines[i];
    if (line.empty()) continue;
    const auto e = TraceEvent::from_jsonl(line);
    if (!e) {
      std::cerr << path << ":" << i + 1 << ": unparseable event: " << line
                << "\n";
      return 1;
    }
    if (e->to_jsonl() != line) {
      std::cerr << path << ":" << i + 1
                << ": not canonical (re-serialization differs):\n  got:  "
                << line << "\n  want: " << e->to_jsonl() << "\n";
      return 1;
    }
    if (e->time < prev) {
      std::cerr << path << ":" << i + 1 << ": time " << e->time
                << " goes backwards (previous event at " << prev << ")\n";
      return 1;
    }
    prev = e->time;
    ++n;
  }
  std::cout << "OK: " << n << " events, schema-valid, time-ordered\n";
  return 0;
}

// ---------------------------------------------------------------------------
// --metrics-check: minimal JSON model + recursive-descent parser. Only what
// the metrics schema needs — no surrogate pairs, no extension syntax — but
// strict about structure so a truncated or hand-edited file fails loudly.
// ---------------------------------------------------------------------------

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string raw;  // number token verbatim: counters need u64 exactness
  std::string str;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;  // insertion order

  const Json* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  bool is(Kind k) const { return kind == k; }
  /// The number token as an exact u64; nullopt for signs/fractions/overflow.
  std::optional<std::uint64_t> as_u64() const {
    if (kind != Kind::kNumber || raw.empty()) return std::nullopt;
    for (char c : raw) {
      if (c < '0' || c > '9') return std::nullopt;
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
    if (errno != 0 || end != raw.c_str() + raw.size()) return std::nullopt;
    return static_cast<std::uint64_t>(v);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  std::optional<Json> parse() {
    auto v = value();
    skip_ws();
    if (!v || pos_ != s_.size()) return std::nullopt;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<std::string> string_token() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) return std::nullopt;
        const char e = s_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return std::nullopt;
            }
            // ASCII only; anything else degrades to '?' (names are ASCII).
            out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
            break;
          }
          default: return std::nullopt;
        }
      } else {
        out.push_back(c);
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> value() {
    skip_ws();
    if (pos_ >= s_.size()) return std::nullopt;
    const char c = s_[pos_];
    Json v;
    if (c == '{') {
      ++pos_;
      v.kind = Json::Kind::kObject;
      skip_ws();
      if (eat('}')) return v;
      while (true) {
        auto key = string_token();
        if (!key || !eat(':')) return std::nullopt;
        auto child = value();
        if (!child) return std::nullopt;
        v.object.emplace_back(std::move(*key), std::move(*child));
        if (eat(',')) continue;
        if (eat('}')) return v;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = Json::Kind::kArray;
      skip_ws();
      if (eat(']')) return v;
      while (true) {
        auto child = value();
        if (!child) return std::nullopt;
        v.array.push_back(std::move(*child));
        if (eat(',')) continue;
        if (eat(']')) return v;
        return std::nullopt;
      }
    }
    if (c == '"') {
      auto s = string_token();
      if (!s) return std::nullopt;
      v.kind = Json::Kind::kString;
      v.str = std::move(*s);
      return v;
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      v.kind = Json::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      v.kind = Json::Kind::kBool;
      return v;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return v;  // kNull
    }
    // Number: [-]digits[.digits][(e|E)[+-]digits]
    const std::size_t start = pos_;
    if (c == '-') ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && c == '-')) return std::nullopt;
    v.kind = Json::Kind::kNumber;
    v.raw = s_.substr(start, pos_ - start);
    try {
      v.number = std::stod(v.raw);
    } catch (...) {
      return std::nullopt;
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// One validation failure: prints and counts. Returns false for use in
/// early-out expressions.
struct MetricsCheck {
  const std::string& path;
  int failures = 0;
  bool fail(const std::string& what) {
    std::cerr << path << ": " << what << "\n";
    ++failures;
    return false;
  }
};

bool check_histogram(MetricsCheck& mc, const std::string& name,
                     const Json& h) {
  const Json* count = h.find("count");
  const Json* sum = h.find("sum");
  const Json* min = h.find("min");
  const Json* max = h.find("max");
  const Json* buckets = h.find("buckets");
  if (!count || !count->as_u64() || !sum || !sum->as_u64() || !min ||
      !min->as_u64() || !max || !max->as_u64() || !buckets ||
      !buckets->is(Json::Kind::kArray)) {
    return mc.fail("histogram " + name +
                   ": needs u64 count/sum/min/max and a buckets array");
  }
  const std::uint64_t n = *count->as_u64();
  std::uint64_t bucket_total = 0;
  std::uint64_t prev_lb = 0;
  bool first = true;
  std::uint64_t first_lb = 0, last_lb = 0;
  for (const Json& pair : buckets->array) {
    if (!pair.is(Json::Kind::kArray) || pair.array.size() != 2 ||
        !pair.array[0].as_u64() || !pair.array[1].as_u64()) {
      return mc.fail("histogram " + name +
                     ": buckets must be [lower_bound, count] u64 pairs");
    }
    const std::uint64_t lb = *pair.array[0].as_u64();
    const std::uint64_t bn = *pair.array[1].as_u64();
    if (bn == 0) {
      return mc.fail("histogram " + name + ": empty bucket at " +
                     std::to_string(lb) + " must be omitted");
    }
    // Canonical boundary: the lower bound must round-trip through the
    // bucket math the recorder uses.
    using stats::Histogram;
    if (Histogram::bucket_lower_bound(Histogram::bucket_index(lb)) != lb) {
      return mc.fail("histogram " + name + ": " + std::to_string(lb) +
                     " is not a canonical bucket boundary");
    }
    if (!first && lb <= prev_lb) {
      return mc.fail("histogram " + name +
                     ": bucket bounds not strictly increasing at " +
                     std::to_string(lb));
    }
    if (first) first_lb = lb;
    last_lb = lb;
    first = false;
    prev_lb = lb;
    bucket_total += bn;
  }
  if (bucket_total != n) {
    return mc.fail("histogram " + name + ": count " + std::to_string(n) +
                   " != bucket total " + std::to_string(bucket_total));
  }
  if (n > 0) {
    using stats::Histogram;
    const std::uint64_t mn = *min->as_u64();
    const std::uint64_t mx = *max->as_u64();
    if (mn > mx) {
      return mc.fail("histogram " + name + ": min > max");
    }
    if (Histogram::bucket_index(mn) != Histogram::bucket_index(first_lb) ||
        Histogram::bucket_index(mx) != Histogram::bucket_index(last_lb)) {
      return mc.fail("histogram " + name +
                     ": min/max outside the first/last occupied bucket");
    }
  } else if (!buckets->array.empty()) {
    return mc.fail("histogram " + name + ": zero count with buckets");
  }
  return true;
}

int metrics_check(const std::string& path, const std::string& trace_path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const auto doc = JsonParser(text).parse();
  MetricsCheck mc{path};
  if (!doc || !doc->is(Json::Kind::kObject)) {
    mc.fail("not a JSON object");
    return 1;
  }

  const Json* schema = doc->find("schema");
  if (!schema || !schema->is(Json::Kind::kString) ||
      schema->str != "lrs-metrics-v1") {
    mc.fail("schema tag missing or not \"lrs-metrics-v1\"");
  }
  const Json* enabled = doc->find("enabled");
  if (!enabled || !enabled->is(Json::Kind::kBool)) {
    mc.fail("\"enabled\" missing or not a boolean");
  }
  if (!doc->find("provenance")) mc.fail("\"provenance\" missing");

  const Json* det = doc->find("deterministic");
  const Json* counters = nullptr;
  if (!det || !det->is(Json::Kind::kObject)) {
    mc.fail("\"deterministic\" section missing");
  } else {
    counters = det->find("counters");
    if (!counters || !counters->is(Json::Kind::kObject)) {
      mc.fail("deterministic.counters missing");
      counters = nullptr;
    } else {
      for (const auto& [name, v] : counters->object) {
        if (!v.as_u64()) mc.fail("counter " + name + " is not a u64");
      }
    }
    const Json* hists = det->find("histograms");
    if (!hists || !hists->is(Json::Kind::kObject)) {
      mc.fail("deterministic.histograms missing");
    } else {
      for (const auto& [name, h] : hists->object) {
        if (!h.is(Json::Kind::kObject)) {
          mc.fail("histogram " + name + " is not an object");
          continue;
        }
        check_histogram(mc, name, h);
      }
    }
  }

  const Json* timing = doc->find("timing");
  if (!timing || !timing->is(Json::Kind::kObject)) {
    mc.fail("\"timing\" section missing");
  } else {
    for (const char* key :
         {"wall_ns", "tsc_hz", "attributed_ns", "attributed_frac"}) {
      const Json* v = timing->find(key);
      if (!v || !v->is(Json::Kind::kNumber)) {
        mc.fail(std::string("timing.") + key + " missing or non-numeric");
      }
    }
    const Json* scopes = timing->find("scopes");
    if (!scopes || !scopes->is(Json::Kind::kObject)) {
      mc.fail("timing.scopes missing");
    } else if (counters) {
      // A deterministic timer's call count is mirrored into the
      // deterministic section as "<name>.calls" and the two sections must
      // agree; a deterministic=false scope (beneath a schedule-dependent
      // cache) must NOT leak its calls into the deterministic section.
      for (const auto& [name, s] : scopes->object) {
        const Json* calls = s.find("calls");
        const Json* det_flag = s.find("deterministic");
        if (!det_flag || !det_flag->is(Json::Kind::kBool)) {
          mc.fail("scope " + name + ": \"deterministic\" flag missing");
          continue;
        }
        const Json* mirrored = counters->find(name + ".calls");
        if (!det_flag->boolean) {
          if (mirrored) {
            mc.fail("scope " + name +
                    ": nondeterministic but mirrored into counters");
          }
          continue;
        }
        if (!calls || !calls->as_u64() || !mirrored || !mirrored->as_u64()) {
          mc.fail("scope " + name + ": calls not mirrored into counters");
          continue;
        }
        if (*calls->as_u64() != *mirrored->as_u64()) {
          mc.fail("scope " + name + ": timing calls " + calls->raw +
                  " != deterministic " + name + ".calls " + mirrored->raw);
        }
      }
    }
  }

  // Cross-checks between independently-maintained counters.
  std::uint64_t trace_events_counter = 0;
  bool have_trace_counter = false;
  if (counters) {
    const Json* pop = counters->find("sim.queue.pop");
    const Json* executed = counters->find("core.events_executed");
    if (pop && executed && pop->as_u64() && executed->as_u64() &&
        *pop->as_u64() != *executed->as_u64()) {
      mc.fail("sim.queue.pop " + pop->raw + " != core.events_executed " +
              executed->raw);
    }
    if (const Json* te = counters->find("sim.trace.events");
        te && te->as_u64()) {
      trace_events_counter = *te->as_u64();
      have_trace_counter = true;
    }
  }
  if (!trace_path.empty()) {
    std::ifstream tin(trace_path, std::ios::binary);
    if (!tin) {
      mc.fail("cannot open trace " + trace_path);
    } else {
      std::uint64_t lines = 0;
      for (std::string line; std::getline(tin, line);) {
        if (!line.empty()) ++lines;
      }
      if (!have_trace_counter) {
        mc.fail("trace given but sim.trace.events counter missing");
      } else if (trace_events_counter != lines) {
        mc.fail("sim.trace.events " + std::to_string(trace_events_counter) +
                " != trace line count " + std::to_string(lines) + " (" +
                trace_path + ")");
      }
    }
  }

  if (mc.failures > 0) {
    std::cerr << path << ": " << mc.failures << " metrics-check failure(s)\n";
    return 1;
  }
  std::cout << "OK: metrics schema valid"
            << (trace_path.empty() ? "" : ", trace count cross-checked")
            << "\n";
  return 0;
}

// ---------------------------------------------------------------------------
// --fleet-check: validates a bench_fleet export (BENCH_fleet.json). The
// column list is pinned verbatim — a drive-by reorder of the bench table is
// a schema break for downstream tooling, not a cosmetic change. Integer
// columns must be exact u64 tokens (no floats, no signs); per-rung ALL rows
// must be consistent folds of their tenant rows, which doubles as CI's
// cross-check that the engine's per-tenant aggregation didn't drift.
// ---------------------------------------------------------------------------

/// "X/Y" -> (X, Y); nullopt unless both are exact u64 tokens.
std::optional<std::pair<std::uint64_t, std::uint64_t>> parse_ratio(
    const std::string& s) {
  const std::size_t slash = s.find('/');
  if (slash == std::string::npos) return std::nullopt;
  Json a, b;
  a.kind = b.kind = Json::Kind::kNumber;
  a.raw = s.substr(0, slash);
  b.raw = s.substr(slash + 1);
  const auto x = a.as_u64();
  const auto y = b.as_u64();
  if (!x || !y) return std::nullopt;
  return std::make_pair(*x, *y);
}

int fleet_check(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  MetricsCheck mc{path};

  const auto doc = JsonParser(text).parse();
  if (!doc || !doc->is(Json::Kind::kObject)) {
    mc.fail("not a JSON object");
    return 1;
  }
  const Json* bench = doc->find("bench");
  if (!bench || !bench->is(Json::Kind::kString) || bench->str != "fleet") {
    mc.fail("\"bench\" must be \"fleet\"");
  }
  const Json* prov = doc->find("provenance");
  if (!prov || !prov->is(Json::Kind::kObject)) {
    mc.fail("\"provenance\" object missing");
  }

  // The pinned schema. Everything up to and including images_ok is the
  // deterministic prefix (byte-identical for any LRS_JOBS); the trailing
  // four are timing columns, present only on ALL rows.
  static const std::vector<std::string> kColumns = {
      "rung", "tenants", "cells", "tenant", "codec", "version", "delta",
      "receivers", "converged", "events", "max_cell_events", "imbalance",
      "data_pkts", "snack_pkts", "total_bytes", "latency_s", "images_ok",
      "wall_s", "events_per_sec", "peak_rss_mb", "steals"};
  const Json* columns = doc->find("columns");
  if (!columns || !columns->is(Json::Kind::kArray)) {
    mc.fail("\"columns\" array missing");
    return 1;
  }
  if (columns->array.size() != kColumns.size()) {
    mc.fail("expected " + std::to_string(kColumns.size()) + " columns, got " +
            std::to_string(columns->array.size()));
    return 1;
  }
  for (std::size_t c = 0; c < kColumns.size(); ++c) {
    if (!columns->array[c].is(Json::Kind::kString) ||
        columns->array[c].str != kColumns[c]) {
      mc.fail("column " + std::to_string(c) + " must be \"" + kColumns[c] +
              "\"");
    }
  }
  const auto col = [&](const std::string& name) {
    for (std::size_t c = 0; c < kColumns.size(); ++c) {
      if (kColumns[c] == name) return c;
    }
    return kColumns.size();
  };

  const Json* rows = doc->find("rows");
  if (!rows || !rows->is(Json::Kind::kArray) || rows->array.empty()) {
    mc.fail("\"rows\" missing or empty");
    return 1;
  }

  /// Accumulated per rung while walking rows, then checked against ALL.
  struct RungFold {
    bool has_all = false;
    std::uint64_t tenants_declared = 0;
    std::uint64_t tenant_rows = 0;
    std::uint64_t events = 0;
    std::uint64_t max_cell_events = 0;
    std::uint64_t converged = 0;
    std::uint64_t all_events = 0;
    std::uint64_t all_max_cell_events = 0;
    std::uint64_t all_converged = 0;
  };
  std::map<std::string, RungFold> rungs;
  std::uint64_t delta_rows = 0;

  for (std::size_t r = 0; r < rows->array.size(); ++r) {
    const std::string at = "row " + std::to_string(r);
    const Json& row = rows->array[r];
    if (!row.is(Json::Kind::kArray) || row.array.size() != kColumns.size()) {
      mc.fail(at + ": expected " + std::to_string(kColumns.size()) +
              " cells");
      continue;
    }
    const auto cell = [&](const std::string& name) -> const Json& {
      return row.array[col(name)];
    };
    const auto u64_cell =
        [&](const std::string& name) -> std::optional<std::uint64_t> {
      const auto v = cell(name).as_u64();
      if (!v) mc.fail(at + ": " + name + " must be an exact u64");
      return v;
    };

    if (!cell("rung").is(Json::Kind::kString) || cell("rung").str.empty()) {
      mc.fail(at + ": rung must be a non-empty string");
      continue;
    }
    RungFold& fold = rungs[cell("rung").str];
    const auto tenants = u64_cell("tenants");
    if (tenants) {
      if (fold.tenants_declared == 0) fold.tenants_declared = *tenants;
      if (fold.tenants_declared != *tenants) {
        mc.fail(at + ": tenants differs within the rung");
      }
    }
    u64_cell("cells");
    u64_cell("version");
    if (!cell("tenant").is(Json::Kind::kString) ||
        cell("tenant").str.empty()) {
      mc.fail(at + ": tenant must be a non-empty string");
      continue;
    }
    if (!cell("codec").is(Json::Kind::kString)) {
      mc.fail(at + ": codec must be a string");
    }
    if (!cell("delta").is(Json::Kind::kBool)) {
      mc.fail(at + ": delta must be a bool");
    } else if (cell("delta").boolean) {
      ++delta_rows;
    }
    if (!cell("images_ok").is(Json::Kind::kBool)) {
      mc.fail(at + ": images_ok must be a bool");
    } else if (!cell("images_ok").boolean) {
      mc.fail(at + ": images_ok is false");
    }
    u64_cell("receivers");
    const auto events = u64_cell("events");
    const auto max_events = u64_cell("max_cell_events");
    if (events && max_events && *max_events > *events) {
      mc.fail(at + ": max_cell_events " + std::to_string(*max_events) +
              " > events " + std::to_string(*events));
    }
    u64_cell("data_pkts");
    u64_cell("snack_pkts");
    u64_cell("total_bytes");
    if (!cell("imbalance").is(Json::Kind::kNumber) ||
        cell("imbalance").number < 0.999) {
      mc.fail(at + ": imbalance must be a number >= 1 (max/mean)");
    }
    if (!cell("latency_s").is(Json::Kind::kNumber) ||
        cell("latency_s").number < 0) {
      mc.fail(at + ": latency_s must be a non-negative number");
    }
    std::optional<std::pair<std::uint64_t, std::uint64_t>> ratio;
    if (!cell("converged").is(Json::Kind::kString) ||
        !(ratio = parse_ratio(cell("converged").str))) {
      mc.fail(at + ": converged must be \"X/Y\" with exact u64 parts");
    } else if (ratio->first > ratio->second) {
      mc.fail(at + ": converged " + cell("converged").str + " exceeds total");
    }

    const bool is_all = cell("tenant").str == "ALL";
    // Timing columns: exactly the ALL rows carry them (steals as exact u64,
    // the rest as numbers); tenant rows leave them empty.
    for (const char* name : {"wall_s", "events_per_sec", "peak_rss_mb"}) {
      const bool num = cell(name).is(Json::Kind::kNumber);
      const bool empty =
          cell(name).is(Json::Kind::kString) && cell(name).str.empty();
      if (is_all ? !num : !empty) {
        mc.fail(at + ": " + name +
                (is_all ? " must be a number on ALL rows"
                        : " must be empty on tenant rows"));
      }
    }
    if (is_all) {
      u64_cell("steals");
    } else if (!cell("steals").is(Json::Kind::kString) ||
               !cell("steals").str.empty()) {
      mc.fail(at + ": steals must be empty on tenant rows");
    }

    if (is_all) {
      if (fold.has_all) mc.fail(at + ": duplicate ALL row for rung");
      fold.has_all = true;
      if (events) fold.all_events = *events;
      if (max_events) fold.all_max_cell_events = *max_events;
      if (ratio) fold.all_converged = ratio->first;
    } else {
      fold.tenant_rows += 1;
      if (events) fold.events += *events;
      if (max_events) {
        fold.max_cell_events = std::max(fold.max_cell_events, *max_events);
      }
      if (ratio) fold.converged += ratio->first;
    }
  }

  for (const auto& [name, fold] : rungs) {
    if (!fold.has_all) {
      mc.fail("rung " + name + ": ALL row missing");
      continue;
    }
    if (fold.tenant_rows != fold.tenants_declared) {
      mc.fail("rung " + name + ": " + std::to_string(fold.tenant_rows) +
              " tenant rows but tenants=" +
              std::to_string(fold.tenants_declared));
    }
    if (fold.events != fold.all_events) {
      mc.fail("rung " + name + ": tenant events sum " +
              std::to_string(fold.events) + " != ALL events " +
              std::to_string(fold.all_events));
    }
    if (fold.max_cell_events != fold.all_max_cell_events) {
      mc.fail("rung " + name + ": tenant max_cell_events max " +
              std::to_string(fold.max_cell_events) + " != ALL " +
              std::to_string(fold.all_max_cell_events));
    }
    if (fold.converged != fold.all_converged) {
      mc.fail("rung " + name + ": tenant converged sum " +
              std::to_string(fold.converged) + " != ALL " +
              std::to_string(fold.all_converged));
    }
  }
  if (delta_rows == 0) {
    mc.fail("no delta tenant rows: every rung mixes in delta images");
  }

  if (mc.failures > 0) {
    std::cerr << path << ": " << mc.failures << " fleet-check failure(s)\n";
    return 1;
  }
  std::cout << "OK: fleet schema valid (" << rungs.size() << " rung(s), "
            << rows->array.size() << " rows, " << delta_rows
            << " delta tenant row(s))\n";
  return 0;
}

struct NodeStats {
  std::uint64_t sends = 0;
  std::uint64_t receives = 0;
  std::uint64_t auth_failures = 0;
  std::uint64_t reboots = 0;
  std::uint32_t pages_complete = 0;
  sim::SimTime first_data_rx = -1;
  sim::SimTime completion = -1;
};

void summarize(const std::vector<TraceEvent>& events, std::size_t top_k,
               sim::SimTime bucket) {
  if (events.empty()) {
    std::cout << "empty trace\n";
    return;
  }
  const sim::SimTime end = events.back().time;

  std::map<NodeId, NodeStats> nodes;
  std::map<std::uint32_t, std::uint64_t> serve_pages;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> serves;
  // Per bucket: [0] data sends, [1] snack sends, [2] other sends.
  std::map<sim::SimTime, std::array<std::uint64_t, 3>> buckets;

  for (const auto& e : events) {
    auto& ns = nodes[e.node];
    switch (e.type) {
      case TraceEventType::kSend: {
        ns.sends += 1;
        auto& b = buckets[e.time / bucket];
        const auto cls = static_cast<sim::PacketClass>(e.cls);
        if (cls == sim::PacketClass::kData) {
          b[0] += 1;
        } else if (cls == sim::PacketClass::kSnack) {
          b[1] += 1;
        } else {
          b[2] += 1;
        }
        break;
      }
      case TraceEventType::kDeliver:
        ns.receives += 1;
        break;
      case TraceEventType::kReboot:
        ns.reboots += 1;
        break;
      case TraceEventType::kAuthFailure:
        ns.auth_failures += 1;
        break;
      case TraceEventType::kPageComplete:
        ns.pages_complete = std::max(ns.pages_complete, e.b);
        break;
      case TraceEventType::kNodeComplete:
        if (ns.completion < 0) ns.completion = e.time;
        break;
      case TraceEventType::kDataServe:
        serve_pages[e.a] += 1;
        serves[{e.a, e.b}] += 1;
        break;
      case TraceEventType::kDataRx:
        if (ns.first_data_rx < 0) ns.first_data_rx = e.time;
        break;
      case TraceEventType::kStateTransition:
        break;
    }
  }

  std::cout << events.size() << " events over "
            << sim::to_seconds(end) << " s, " << nodes.size() << " nodes\n";

  {
    Table t({"node", "sends", "receives", "auth_fail", "reboots", "pages",
             "first_data_s", "complete_s"});
    for (const auto& [id, ns] : nodes) {
      t.add_row({std::to_string(id), std::to_string(ns.sends),
                 std::to_string(ns.receives),
                 std::to_string(ns.auth_failures),
                 std::to_string(ns.reboots),
                 std::to_string(ns.pages_complete),
                 ns.first_data_rx < 0
                     ? "-"
                     : format_num(sim::to_seconds(ns.first_data_rx), 2),
                 ns.completion < 0
                     ? "-"
                     : format_num(sim::to_seconds(ns.completion), 2)});
    }
    std::cout << "\n== per-node latency breakdown ==\n";
    t.print(std::cout);
  }

  if (!serve_pages.empty()) {
    Table t({"page", "serves"});
    for (const auto& [page, count] : serve_pages) {
      t.add_row({std::to_string(page), std::to_string(count)});
    }
    std::cout << "\n== scheduler popularity (data serves per page) ==\n";
    t.print(std::cout);
  }

  if (!serves.empty()) {
    std::vector<std::pair<std::uint64_t, std::pair<std::uint32_t,
                                                   std::uint32_t>>> ranked;
    for (const auto& [pi, count] : serves) ranked.push_back({count, pi});
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    Table t({"page", "index", "times_sent"});
    for (std::size_t i = 0; i < ranked.size() && i < top_k; ++i) {
      t.add_row({std::to_string(ranked[i].second.first),
                 std::to_string(ranked[i].second.second),
                 std::to_string(ranked[i].first)});
    }
    std::cout << "\n== top-" << top_k << " retransmitted packet indices ==\n";
    t.print(std::cout);
  }

  if (!buckets.empty()) {
    Table t({"t_s", "data", "snack", "other", "snack_data_ratio"});
    for (const auto& [b, counts] : buckets) {
      const double ratio =
          counts[0] > 0
              ? static_cast<double>(counts[1]) /
                    static_cast<double>(counts[0])
              : 0.0;
      t.add_row({format_num(sim::to_seconds(b * bucket), 0),
                 std::to_string(counts[0]), std::to_string(counts[1]),
                 std::to_string(counts[2]), format_num(ratio, 3)});
    }
    std::cout << "\n== SNACK/data ratio over time (bucket start) ==\n";
    t.print(std::cout);
  }
}

int run(int argc, char** argv) {
  Args args(argc, argv);
  // "--check trace.jsonl" parses as check=trace.jsonl (Args treats the
  // next token as the flag's value), so a non-boolean value doubles as
  // the positional path.
  const std::string check_val = args.get("check", "");
  const bool do_check = !check_val.empty() && check_val != "false";
  const std::string metrics_path = args.get("metrics-check", "");
  const bool do_metrics =
      !metrics_path.empty() && metrics_path != "true" &&
      metrics_path != "false";
  const std::string fleet_path = args.get("fleet-check", "");
  const bool do_fleet =
      !fleet_path.empty() && fleet_path != "true" && fleet_path != "false";
  std::string path;
  if (args.positional().size() == 1) {
    path = args.positional()[0];
  } else if (args.positional().empty() && !check_val.empty() &&
             check_val != "true" && check_val != "false") {
    path = check_val;
  }
  const long top_k = args.get_int("top", 10);
  const double bucket_s = args.get_double("bucket", 10.0);
  // In metrics mode the trace path is optional (it only adds the event
  // cross-check); fleet mode takes no trace at all; every other mode needs
  // it.
  bool bad = top_k < 1 || bucket_s <= 0 ||
             (path.empty() && !do_metrics && !do_fleet);
  if (!metrics_path.empty() && !do_metrics) {
    std::cerr << "error: --metrics-check needs a file argument\n";
    bad = true;
  }
  if (!fleet_path.empty() && !do_fleet) {
    std::cerr << "error: --fleet-check needs a file argument\n";
    bad = true;
  }
  if (static_cast<int>(do_metrics) + static_cast<int>(do_check) +
          static_cast<int>(do_fleet) >
      1) {
    std::cerr << "error: --check, --metrics-check and --fleet-check are"
                 " exclusive\n";
    bad = true;
  }
  if (do_fleet && !path.empty()) {
    std::cerr << "error: --fleet-check takes no trace argument\n";
    bad = true;
  }
  for (const auto& e : args.errors()) {
    std::cerr << "error: " << e << "\n";
    bad = true;
  }
  for (const auto& u : args.unknown()) {
    std::cerr << "error: unknown flag " << u << "\n";
    bad = true;
  }
  if (bad) {
    std::cerr << "usage: " << argv[0]
              << " [--check] [--top=K] [--bucket=SECONDS] trace.jsonl\n"
                 "       "
              << argv[0] << " --metrics-check=metrics.json [trace.jsonl]\n"
                 "       "
              << argv[0] << " --fleet-check=BENCH_fleet.json\n";
    return 2;
  }

  if (do_metrics) return metrics_check(metrics_path, path);
  if (do_fleet) return fleet_check(fleet_path);

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);

  if (do_check) return check(path, lines);

  std::vector<TraceEvent> events;
  events.reserve(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const auto e = TraceEvent::from_jsonl(lines[i]);
    if (!e) {
      std::cerr << path << ":" << i + 1 << ": unparseable event\n";
      return 1;
    }
    events.push_back(*e);
  }
  summarize(events, static_cast<std::size_t>(top_k),
            static_cast<sim::SimTime>(bucket_s * sim::kSecond));
  return 0;
}

}  // namespace
}  // namespace lrs

int main(int argc, char** argv) { return lrs::run(argc, argv); }
