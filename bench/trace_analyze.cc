// Trace summarizer and schema checker for the JSONL event logs written by
// --trace= (sim/trace.h; format spec in docs/observability.md).
//
//   ./bench/trace_analyze t.jsonl              # human-readable summary
//   ./bench/trace_analyze --check t.jsonl      # CI schema validation
//
// The summary answers the questions end-of-run aggregates cannot: which
// node finished last and why (per-node latency breakdown), what the serve
// scheduler actually chose (page popularity histogram, top-k retransmitted
// packet indices) and how control traffic evolved against data traffic
// (SNACK/data ratio per time bucket).
//
// --check validates every line against the schema the tests pin: it must
// parse as a known event, re-serialize byte-identically (so the file was
// produced by, not merely resembles, TraceEvent::to_jsonl) and carry a
// non-decreasing timestamp. Exit 0 on success, 1 on the first violation.
#include <algorithm>
#include <array>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "sim/trace.h"
#include "util/args.h"
#include "util/csv.h"

namespace lrs {
namespace {

using sim::TraceEvent;
using sim::TraceEventType;

int check(const std::string& path, const std::vector<std::string>& lines) {
  sim::SimTime prev = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto& line = lines[i];
    if (line.empty()) continue;
    const auto e = TraceEvent::from_jsonl(line);
    if (!e) {
      std::cerr << path << ":" << i + 1 << ": unparseable event: " << line
                << "\n";
      return 1;
    }
    if (e->to_jsonl() != line) {
      std::cerr << path << ":" << i + 1
                << ": not canonical (re-serialization differs):\n  got:  "
                << line << "\n  want: " << e->to_jsonl() << "\n";
      return 1;
    }
    if (e->time < prev) {
      std::cerr << path << ":" << i + 1 << ": time " << e->time
                << " goes backwards (previous event at " << prev << ")\n";
      return 1;
    }
    prev = e->time;
    ++n;
  }
  std::cout << "OK: " << n << " events, schema-valid, time-ordered\n";
  return 0;
}

struct NodeStats {
  std::uint64_t sends = 0;
  std::uint64_t receives = 0;
  std::uint64_t auth_failures = 0;
  std::uint64_t reboots = 0;
  std::uint32_t pages_complete = 0;
  sim::SimTime first_data_rx = -1;
  sim::SimTime completion = -1;
};

void summarize(const std::vector<TraceEvent>& events, std::size_t top_k,
               sim::SimTime bucket) {
  if (events.empty()) {
    std::cout << "empty trace\n";
    return;
  }
  const sim::SimTime end = events.back().time;

  std::map<NodeId, NodeStats> nodes;
  std::map<std::uint32_t, std::uint64_t> serve_pages;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> serves;
  // Per bucket: [0] data sends, [1] snack sends, [2] other sends.
  std::map<sim::SimTime, std::array<std::uint64_t, 3>> buckets;

  for (const auto& e : events) {
    auto& ns = nodes[e.node];
    switch (e.type) {
      case TraceEventType::kSend: {
        ns.sends += 1;
        auto& b = buckets[e.time / bucket];
        const auto cls = static_cast<sim::PacketClass>(e.cls);
        if (cls == sim::PacketClass::kData) {
          b[0] += 1;
        } else if (cls == sim::PacketClass::kSnack) {
          b[1] += 1;
        } else {
          b[2] += 1;
        }
        break;
      }
      case TraceEventType::kDeliver:
        ns.receives += 1;
        break;
      case TraceEventType::kReboot:
        ns.reboots += 1;
        break;
      case TraceEventType::kAuthFailure:
        ns.auth_failures += 1;
        break;
      case TraceEventType::kPageComplete:
        ns.pages_complete = std::max(ns.pages_complete, e.b);
        break;
      case TraceEventType::kNodeComplete:
        if (ns.completion < 0) ns.completion = e.time;
        break;
      case TraceEventType::kDataServe:
        serve_pages[e.a] += 1;
        serves[{e.a, e.b}] += 1;
        break;
      case TraceEventType::kDataRx:
        if (ns.first_data_rx < 0) ns.first_data_rx = e.time;
        break;
      case TraceEventType::kStateTransition:
        break;
    }
  }

  std::cout << events.size() << " events over "
            << sim::to_seconds(end) << " s, " << nodes.size() << " nodes\n";

  {
    Table t({"node", "sends", "receives", "auth_fail", "reboots", "pages",
             "first_data_s", "complete_s"});
    for (const auto& [id, ns] : nodes) {
      t.add_row({std::to_string(id), std::to_string(ns.sends),
                 std::to_string(ns.receives),
                 std::to_string(ns.auth_failures),
                 std::to_string(ns.reboots),
                 std::to_string(ns.pages_complete),
                 ns.first_data_rx < 0
                     ? "-"
                     : format_num(sim::to_seconds(ns.first_data_rx), 2),
                 ns.completion < 0
                     ? "-"
                     : format_num(sim::to_seconds(ns.completion), 2)});
    }
    std::cout << "\n== per-node latency breakdown ==\n";
    t.print(std::cout);
  }

  if (!serve_pages.empty()) {
    Table t({"page", "serves"});
    for (const auto& [page, count] : serve_pages) {
      t.add_row({std::to_string(page), std::to_string(count)});
    }
    std::cout << "\n== scheduler popularity (data serves per page) ==\n";
    t.print(std::cout);
  }

  if (!serves.empty()) {
    std::vector<std::pair<std::uint64_t, std::pair<std::uint32_t,
                                                   std::uint32_t>>> ranked;
    for (const auto& [pi, count] : serves) ranked.push_back({count, pi});
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    Table t({"page", "index", "times_sent"});
    for (std::size_t i = 0; i < ranked.size() && i < top_k; ++i) {
      t.add_row({std::to_string(ranked[i].second.first),
                 std::to_string(ranked[i].second.second),
                 std::to_string(ranked[i].first)});
    }
    std::cout << "\n== top-" << top_k << " retransmitted packet indices ==\n";
    t.print(std::cout);
  }

  if (!buckets.empty()) {
    Table t({"t_s", "data", "snack", "other", "snack_data_ratio"});
    for (const auto& [b, counts] : buckets) {
      const double ratio =
          counts[0] > 0
              ? static_cast<double>(counts[1]) /
                    static_cast<double>(counts[0])
              : 0.0;
      t.add_row({format_num(sim::to_seconds(b * bucket), 0),
                 std::to_string(counts[0]), std::to_string(counts[1]),
                 std::to_string(counts[2]), format_num(ratio, 3)});
    }
    std::cout << "\n== SNACK/data ratio over time (bucket start) ==\n";
    t.print(std::cout);
  }
}

int run(int argc, char** argv) {
  Args args(argc, argv);
  // "--check trace.jsonl" parses as check=trace.jsonl (Args treats the
  // next token as the flag's value), so a non-boolean value doubles as
  // the positional path.
  const std::string check_val = args.get("check", "");
  const bool do_check = !check_val.empty() && check_val != "false";
  std::string path;
  if (args.positional().size() == 1) {
    path = args.positional()[0];
  } else if (args.positional().empty() && check_val != "true" &&
             check_val != "false") {
    path = check_val;
  }
  const long top_k = args.get_int("top", 10);
  const double bucket_s = args.get_double("bucket", 10.0);
  bool bad = top_k < 1 || bucket_s <= 0 || path.empty();
  for (const auto& e : args.errors()) {
    std::cerr << "error: " << e << "\n";
    bad = true;
  }
  for (const auto& u : args.unknown()) {
    std::cerr << "error: unknown flag " << u << "\n";
    bad = true;
  }
  if (bad) {
    std::cerr << "usage: " << argv[0]
              << " [--check] [--top=K] [--bucket=SECONDS] trace.jsonl\n";
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);

  if (do_check) return check(path, lines);

  std::vector<TraceEvent> events;
  events.reserve(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const auto e = TraceEvent::from_jsonl(lines[i]);
    if (!e) {
      std::cerr << path << ":" << i + 1 << ": unparseable event\n";
      return 1;
    }
    events.push_back(*e);
  }
  summarize(events, static_cast<std::size_t>(top_k),
            static_cast<sim::SimTime>(bucket_s * sim::kSecond));
  return 0;
}

}  // namespace
}  // namespace lrs

int main(int argc, char** argv) { return lrs::run(argc, argv); }
