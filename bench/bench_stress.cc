// Seed-sweeping fault-injection stress runner (ISSUE 3 tentpole).
//
// Sweeps an N-seed x fault-plan matrix through the parallel trial runner
// with the invariant observer attached: every combination must complete
// dissemination, reassemble the exact image, and run zero invariant
// violations. The fault layer is deterministic, so the first failing
// combination is reported as a one-line replay command
//
//   ./bench_stress --replay=<scheme>:<plan>:<seed>
//
// which reruns exactly that trial and prints its full diagnosis.
//
// Flags: --seeds=N (per plan; default 20 quick / 50 full), --jobs=J,
// --quick (LR-Seluge only, CI smoke), --scheme=lr-seluge|seluge|deluge
// (restrict the matrix), --replay=... (single-trial replay, exit 1 on
// failure), --trace=T.jsonl / --timeseries=TS.json (structured event
// trace of the first matrix cell's first seed — or of the replayed trial —
// see docs/observability.md). Writes BENCH_stress.json stamped with the
// run-provenance manifest (override with LRS_BENCH_JSON, skip with
// LRS_BENCH_JSON=none).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/experiment.h"
#include "core/provenance.h"
#include "core/run_trials.h"
#include "sim/faults.h"
#include "sim/trace.h"
#include "util/args.h"
#include "util/csv.h"

namespace lrs {
namespace {

using core::ExperimentConfig;
using core::ExperimentResult;
using core::Scheme;
using sim::kMillisecond;
using sim::kSecond;

struct NamedPlan {
  const char* name;
  sim::FaultPlan plan;
  // Plans that mutate frame bytes are only meaningful against schemes with
  // per-packet authentication: an unauthenticated scheme (Deluge) accepts
  // a corrupted payload into its image by design, which is the property
  // the paper argues against, not a harness failure.
  bool mutates = false;
};

std::vector<NamedPlan> fault_matrix() {
  std::vector<NamedPlan> m;
  {
    m.push_back({"clean", {}, false});
  }
  {
    sim::FaultPlan p;
    p.corrupt_prob = 0.05;
    p.corrupt_max_flips = 2;
    m.push_back({"corrupt-light", p, true});
  }
  {
    sim::FaultPlan p;
    p.corrupt_prob = 0.25;
    p.corrupt_max_flips = 8;
    m.push_back({"corrupt-heavy", p, true});
  }
  {
    sim::FaultPlan p;
    p.corrupt_prob = 0.15;
    p.corrupt_burst = true;
    p.corrupt_burst_len = 12;
    m.push_back({"corrupt-burst", p, true});
  }
  {
    sim::FaultPlan p;
    p.truncate_prob = 0.1;
    m.push_back({"truncate", p, true});
  }
  {
    sim::FaultPlan p;
    p.pad_prob = 0.1;
    p.max_pad = 16;
    m.push_back({"pad", p, true});
  }
  {
    sim::FaultPlan p;
    p.duplicate_prob = 0.2;
    p.max_copies = 3;
    m.push_back({"duplicate", p, false});
  }
  {
    sim::FaultPlan p;
    p.reorder_prob = 0.3;
    p.reorder_max_delay = 30 * kMillisecond;
    m.push_back({"reorder", p, false});
  }
  {
    sim::FaultPlan p;
    p.crashes.push_back({2, 1 * kSecond, 700 * kMillisecond});
    p.crashes.push_back({3, 2 * kSecond, 500 * kMillisecond});
    m.push_back({"crash", p, false});
  }
  {
    sim::FaultPlan p;
    p.corrupt_prob = 0.05;
    p.truncate_prob = 0.03;
    p.duplicate_prob = 0.05;
    p.reorder_prob = 0.1;
    p.reorder_max_delay = 20 * kMillisecond;
    p.crashes.push_back({2, 1 * kSecond, 500 * kMillisecond});
    m.push_back({"chaos", p, true});
  }
  return m;
}

/// Small, fast configuration (test-e2e scale): 8 pages of 8x32-byte blocks,
/// four receivers on a star, light uniform loss on top of the fault plan.
ExperimentConfig stress_config(Scheme scheme, const sim::FaultPlan& plan,
                               std::uint64_t seed) {
  ExperimentConfig c;
  c.scheme = scheme;
  c.params.payload_size = 32;
  c.params.k = 8;
  c.params.n = 12;
  c.params.k0 = 4;
  c.params.n0 = 8;
  c.params.puzzle_strength = 4;
  c.image_size = 2048;
  c.receivers = 4;
  c.seed = seed;
  c.loss_p = 0.05;
  c.timing.trickle.tau_low = 250 * kMillisecond;
  c.timing.trickle.tau_high = 8 * kSecond;
  c.faults = plan;
  c.check_invariants = true;
  return c;
}

bool trial_passed(const ExperimentResult& r) {
  return r.all_complete && r.images_match && r.invariant_violations == 0;
}

std::string diagnose(const ExperimentResult& r) {
  if (!r.all_complete) {
    return "incomplete: " + std::to_string(r.completed) + "/" +
           std::to_string(r.receivers) + " receivers finished";
  }
  if (!r.images_match) return "image mismatch on a completed receiver";
  if (r.invariant_violations > 0) return r.first_violation;
  return "ok";
}

std::optional<Scheme> parse_scheme(const std::string& name) {
  if (name == "deluge") return Scheme::kDeluge;
  if (name == "seluge") return Scheme::kSeluge;
  if (name == "lr-seluge") return Scheme::kLrSeluge;
  return std::nullopt;
}

struct CellResult {
  std::string scheme;
  std::string plan;
  std::size_t seeds = 0;
  std::size_t failures = 0;
  std::uint64_t tampered = 0;
  std::uint64_t drops = 0;
  std::uint64_t reboots = 0;
  std::uint64_t checks = 0;
  std::uint64_t violations = 0;
  std::string first_failure;  // replay command of the first failing seed
};

void write_json(const std::vector<CellResult>& cells, std::size_t combos,
                std::size_t failures, bool quick, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "could not open " << path << " for writing\n";
    return;
  }
  out << "{\n  \"benchmark\": \"bench_stress\",\n"
      << "  \"provenance\": " << core::provenance_json("  ") << ",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"combos\": " << combos << ",\n"
      << "  \"failures\": " << failures << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    out << "    {\"scheme\": \"" << c.scheme << "\", \"plan\": \"" << c.plan
        << "\", \"seeds\": " << c.seeds << ", \"failures\": " << c.failures
        << ", \"tampered_frames\": " << c.tampered
        << ", \"fault_drops\": " << c.drops << ", \"reboots\": " << c.reboots
        << ", \"invariant_checks\": " << c.checks
        << ", \"invariant_violations\": " << c.violations
        << ", \"first_failure\": \"" << c.first_failure << "\"}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << cells.size() << " matrix cells to " << path
            << "\n";
}

int replay(const std::string& spec, const sim::TraceExportConfig& trace) {
  // --replay=<scheme>:<plan>:<seed>
  const auto c1 = spec.find(':');
  const auto c2 = c1 == std::string::npos ? c1 : spec.find(':', c1 + 1);
  if (c2 == std::string::npos) {
    std::cerr << "bad replay spec '" << spec
              << "' (want <scheme>:<plan>:<seed>)\n";
    return 2;
  }
  const std::string scheme_name = spec.substr(0, c1);
  const std::string plan_name = spec.substr(c1 + 1, c2 - c1 - 1);
  const std::uint64_t seed = std::strtoull(spec.c_str() + c2 + 1, nullptr, 10);

  const auto scheme = parse_scheme(scheme_name);
  if (!scheme) {
    std::cerr << "unknown scheme '" << scheme_name << "'\n";
    return 2;
  }
  const sim::FaultPlan* plan = nullptr;
  static const auto matrix = fault_matrix();
  for (const auto& np : matrix) {
    if (plan_name == np.name) plan = &np.plan;
  }
  if (!plan) {
    std::cerr << "unknown fault plan '" << plan_name << "'\n";
    return 2;
  }

  auto cfg = stress_config(*scheme, *plan, seed);
  cfg.trace = trace;
  const auto r = run_experiment(cfg);
  std::cout << "replay " << spec << "  faults=" << plan->describe() << "\n"
            << "  completed:  " << r.completed << "/" << r.receivers << "\n"
            << "  images:     " << (r.images_match ? "match" : "MISMATCH")
            << "\n"
            << "  tampered:   " << r.tampered_frames
            << "  drops: " << r.fault_drops << "  reboots: " << r.reboots
            << "\n"
            << "  invariants: " << r.invariant_checks << " checks, "
            << r.invariant_violations << " violations\n";
  if (!r.first_violation.empty()) {
    std::cout << "  first:      " << r.first_violation << "\n";
  }
  const bool ok = trial_passed(r);
  std::cout << (ok ? "PASS" : "FAIL: " + diagnose(r)) << "\n";
  return ok ? 0 : 1;
}

int run_sweep(int argc, char** argv) {
  Args args(argc, argv);
  const std::string replay_spec = args.get("replay", "");
  const bool quick = args.get_bool("quick", false);
  const std::string only_scheme = args.get("scheme", "");
  const long seeds_flag = args.get_int("seeds", quick ? 20 : 50);
  const long jobs_flag = args.get_int("jobs", 0);
  sim::TraceExportConfig trace;
  trace.events_path = args.get("trace", "");
  if (!trace.events_path.empty()) {
    trace.chrome_path = bench::chrome_trace_path(trace.events_path);
  }
  trace.timeseries_path = args.get("timeseries", "");
  const std::string metrics = args.get("metrics", "");
  const double metrics_heartbeat = args.get_double("metrics-heartbeat", 0.0);
  bool bad = seeds_flag < 1 || jobs_flag < 0;
  if (!only_scheme.empty() && !parse_scheme(only_scheme)) {
    std::cerr << "error: unknown scheme '" << only_scheme << "'\n";
    bad = true;
  }
  if (metrics_heartbeat < 0 || (metrics_heartbeat > 0 && metrics.empty())) {
    std::cerr << "error: --metrics-heartbeat needs --metrics=FILE and a"
                 " positive period\n";
    bad = true;
  }
  for (const auto& e : args.errors()) {
    std::cerr << "error: " << e << "\n";
    bad = true;
  }
  for (const auto& u : args.unknown()) {
    std::cerr << "error: unknown flag " << u << "\n";
    bad = true;
  }
  if (bad) {
    std::cerr << "usage: " << argv[0]
              << " [--seeds=N] [--jobs=J] [--quick] [--scheme=S]"
              << " [--replay=<scheme>:<plan>:<seed>]"
              << " [--trace=T.jsonl] [--timeseries=TS.json]"
              << " [--metrics=M.json] [--metrics-heartbeat=S]\n";
    return 2;
  }
  bench::arm_metrics_export(metrics, metrics_heartbeat);
  if (!replay_spec.empty()) return replay(replay_spec, trace);

  const std::size_t seeds = static_cast<std::size_t>(seeds_flag);
  const std::size_t jobs = static_cast<std::size_t>(jobs_flag);

  std::vector<Scheme> schemes;
  if (!only_scheme.empty()) {
    schemes.push_back(*parse_scheme(only_scheme));
  } else if (quick) {
    schemes = {Scheme::kLrSeluge};
  } else {
    schemes = {Scheme::kDeluge, Scheme::kSeluge, Scheme::kLrSeluge};
  }

  const auto matrix = fault_matrix();
  std::vector<CellResult> cells;
  std::size_t combos = 0, failures = 0;
  Table table({"scheme", "plan", "seeds", "fail", "tampered", "drops",
               "reboots", "inv_checks", "inv_viol"});

  for (const Scheme scheme : schemes) {
    const bool authenticated =
        scheme == Scheme::kSeluge || scheme == Scheme::kLrSeluge;
    for (const auto& np : matrix) {
      if (np.mutates && !authenticated) continue;
      auto base = stress_config(scheme, np.plan, 1);
      // The trace flags record the first matrix cell (seed routing — first
      // trial only, or every seed under all_trials — is run_trials').
      if (cells.empty()) base.trace = trace;
      const auto trials = core::run_trials(base, seeds, jobs);

      CellResult cell;
      cell.scheme = core::scheme_name(scheme);
      cell.plan = np.name;
      cell.seeds = seeds;
      for (std::size_t i = 0; i < trials.size(); ++i) {
        const auto& r = trials[i];
        ++combos;
        cell.tampered += r.tampered_frames;
        cell.drops += r.fault_drops;
        cell.reboots += r.reboots;
        cell.checks += r.invariant_checks;
        cell.violations += r.invariant_violations;
        if (!trial_passed(r)) {
          ++failures;
          ++cell.failures;
          std::ostringstream os;
          os << "--replay=" << cell.scheme << ":" << np.name << ":"
             << base.seed + i;
          if (cell.first_failure.empty()) {
            cell.first_failure = os.str();
            std::cerr << "FAIL " << cell.scheme << "/" << np.name << " seed "
                      << base.seed + i << " (" << diagnose(r)
                      << "); replay with: " << argv[0] << " " << os.str()
                      << "\n";
          }
        }
      }
      table.add_row({cell.scheme, cell.plan, std::to_string(cell.seeds),
                     std::to_string(cell.failures),
                     std::to_string(cell.tampered), std::to_string(cell.drops),
                     std::to_string(cell.reboots), std::to_string(cell.checks),
                     std::to_string(cell.violations)});
      cells.push_back(std::move(cell));
    }
  }

  std::cout << "\n== stress sweep: " << combos << " seed x fault combos, "
            << failures << " failures ==\n";
  table.print(std::cout);
  std::cout << "\n-- CSV --\n";
  table.print_csv(std::cout);
  std::cout.flush();

  const char* env = std::getenv("LRS_BENCH_JSON");
  const std::string path =
      env != nullptr && env[0] != '\0' ? env : "BENCH_stress.json";
  if (path != "none") write_json(cells, combos, failures, quick, path);

  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace lrs

int main(int argc, char** argv) { return lrs::run_sweep(argc, argv); }
