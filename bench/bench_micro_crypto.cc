// Microbenchmarks for the cryptographic substrate (google-benchmark):
// SHA-256 throughput, packet hashes, HMAC, Merkle build/path/verify, WOTS
// keygen/sign/verify, puzzle solve/verify. These are the per-packet and
// per-image costs a sensor node pays (paper §III cites 1.12 s for one
// ECDSA verification on a Tmote Sky — our WOTS substitute is measured
// here).
#include <benchmark/benchmark.h>

#include "crypto/hash.h"
#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "crypto/puzzle.h"
#include "crypto/sha256.h"
#include "crypto/wots.h"
#include "util/rng.h"

namespace {

using namespace lrs;
using namespace lrs::crypto;

Bytes random_bytes(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(size);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform(256));
  return out;
}

void BM_Sha256(benchmark::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(view(data)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(256)->Arg(1024)->Arg(16384);

void BM_PacketHash(benchmark::State& state) {
  const Bytes packet = random_bytes(77, 2);  // typical data-frame preimage
  for (auto _ : state) {
    benchmark::DoNotOptimize(packet_hash(view(packet)));
  }
}
BENCHMARK(BM_PacketHash);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = random_bytes(16, 3);
  const Bytes msg = random_bytes(32, 4);  // control packet
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(view(key), view(msg)));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_MerkleBuild(benchmark::State& state) {
  const std::size_t leaves = static_cast<std::size_t>(state.range(0));
  std::vector<Bytes> data;
  for (std::size_t i = 0; i < leaves; ++i) data.push_back(random_bytes(72, i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleTree::build(data));
  }
}
BENCHMARK(BM_MerkleBuild)->Arg(8)->Arg(16)->Arg(64);

void BM_MerkleVerify(benchmark::State& state) {
  std::vector<Bytes> data;
  for (std::size_t i = 0; i < 16; ++i) data.push_back(random_bytes(72, i));
  const auto tree = MerkleTree::build(data);
  const auto path = tree.auth_path(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MerkleTree::compute_root(view(data[5]), 5, path));
  }
}
BENCHMARK(BM_MerkleVerify);

void BM_WotsKeygen(benchmark::State& state) {
  const Bytes seed = random_bytes(32, 5);
  std::uint64_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(WotsKeyPair::generate(view(seed), index++));
  }
}
BENCHMARK(BM_WotsKeygen);

void BM_WotsSign(benchmark::State& state) {
  const Bytes seed = random_bytes(32, 6);
  const Bytes msg = random_bytes(40, 7);
  std::uint64_t index = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto kp = WotsKeyPair::generate(view(seed), index++);
    state.ResumeTiming();
    benchmark::DoNotOptimize(kp.sign(view(msg)));
  }
}
BENCHMARK(BM_WotsSign);

void BM_WotsVerify(benchmark::State& state) {
  const Bytes seed = random_bytes(32, 8);
  const Bytes msg = random_bytes(40, 9);
  auto kp = WotsKeyPair::generate(view(seed), 0);
  const auto sig = kp.sign(view(msg));
  const auto pk = kp.public_key();
  for (auto _ : state) {
    benchmark::DoNotOptimize(WotsKeyPair::verify(pk, view(msg), sig));
  }
}
BENCHMARK(BM_WotsVerify);

void BM_CertifiedVerify(benchmark::State& state) {
  const Bytes seed = random_bytes(32, 10);
  const Bytes msg = random_bytes(40, 11);
  MultiKeySigner signer(view(seed), 2);
  const auto sig = signer.sign(view(msg));
  const auto root = signer.root_public_key();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MultiKeySigner::verify(root, view(msg), sig));
  }
}
BENCHMARK(BM_CertifiedVerify);

void BM_PuzzleSolve(benchmark::State& state) {
  const auto strength = static_cast<std::uint8_t>(state.range(0));
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    const Bytes msg = random_bytes(48, nonce++);
    benchmark::DoNotOptimize(solve_puzzle(view(msg), strength));
  }
}
BENCHMARK(BM_PuzzleSolve)->Arg(8)->Arg(12);

void BM_PuzzleVerify(benchmark::State& state) {
  const Bytes msg = random_bytes(48, 12);
  const auto sol = solve_puzzle(view(msg), 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_puzzle(view(msg), sol));
  }
}
BENCHMARK(BM_PuzzleVerify);

}  // namespace

BENCHMARK_MAIN();
