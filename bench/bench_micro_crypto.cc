// Microbenchmarks for the cryptographic substrate (google-benchmark):
// SHA-256 throughput across every dispatched kernel (scalar reference,
// unrolled, SHA-NI, multi-buffer SIMD), packet hashes, HMAC, Merkle
// build/path/verify, WOTS keygen/sign/verify, puzzle solve/verify. These
// are the per-packet and per-image costs a sensor node pays (paper §III
// cites 1.12 s for one ECDSA verification on a Tmote Sky — our WOTS
// substitute is measured here).
//
// Besides the google-benchmark console table, the binary runs a self-timed
// sweep of kernels x message sizes x batch widths and writes
// machine-readable results to BENCH_micro_crypto.json (override the path
// with LRS_BENCH_JSON, skip with LRS_BENCH_JSON=none) so successive PRs
// have a perf trajectory to track.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "crypto/hash.h"
#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "crypto/puzzle.h"
#include "crypto/sha256.h"
#include "crypto/sha256_kernels.h"
#include "crypto/wots.h"
#include "core/provenance.h"
#include "util/rng.h"

namespace {

using namespace lrs;
using namespace lrs::crypto;

Bytes random_bytes(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(size);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform(256));
  return out;
}

void BM_Sha256(benchmark::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(view(data)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(256)->Arg(1024)->Arg(16384);

void BM_PacketHash(benchmark::State& state) {
  const Bytes packet = random_bytes(77, 2);  // typical data-frame preimage
  for (auto _ : state) {
    benchmark::DoNotOptimize(packet_hash(view(packet)));
  }
}
BENCHMARK(BM_PacketHash);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = random_bytes(16, 3);
  const Bytes msg = random_bytes(32, 4);  // control packet
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(view(key), view(msg)));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_MerkleBuild(benchmark::State& state) {
  const std::size_t leaves = static_cast<std::size_t>(state.range(0));
  std::vector<Bytes> data;
  for (std::size_t i = 0; i < leaves; ++i) data.push_back(random_bytes(72, i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleTree::build(data));
  }
}
BENCHMARK(BM_MerkleBuild)->Arg(8)->Arg(16)->Arg(64);

void BM_MerkleVerify(benchmark::State& state) {
  std::vector<Bytes> data;
  for (std::size_t i = 0; i < 16; ++i) data.push_back(random_bytes(72, i));
  const auto tree = MerkleTree::build(data);
  const auto path = tree.auth_path(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MerkleTree::compute_root(view(data[5]), 5, path));
  }
}
BENCHMARK(BM_MerkleVerify);

void BM_WotsKeygen(benchmark::State& state) {
  const Bytes seed = random_bytes(32, 5);
  std::uint64_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(WotsKeyPair::generate(view(seed), index++));
  }
}
BENCHMARK(BM_WotsKeygen);

void BM_WotsSign(benchmark::State& state) {
  const Bytes seed = random_bytes(32, 6);
  const Bytes msg = random_bytes(40, 7);
  std::uint64_t index = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto kp = WotsKeyPair::generate(view(seed), index++);
    state.ResumeTiming();
    benchmark::DoNotOptimize(kp.sign(view(msg)));
  }
}
BENCHMARK(BM_WotsSign);

void BM_WotsVerify(benchmark::State& state) {
  const Bytes seed = random_bytes(32, 8);
  const Bytes msg = random_bytes(40, 9);
  auto kp = WotsKeyPair::generate(view(seed), 0);
  const auto sig = kp.sign(view(msg));
  const auto pk = kp.public_key();
  for (auto _ : state) {
    benchmark::DoNotOptimize(WotsKeyPair::verify(pk, view(msg), sig));
  }
}
BENCHMARK(BM_WotsVerify);

void BM_CertifiedVerify(benchmark::State& state) {
  const Bytes seed = random_bytes(32, 10);
  const Bytes msg = random_bytes(40, 11);
  MultiKeySigner signer(view(seed), 2);
  const auto sig = signer.sign(view(msg));
  const auto root = signer.root_public_key();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MultiKeySigner::verify(root, view(msg), sig));
  }
}
BENCHMARK(BM_CertifiedVerify);

void BM_PuzzleSolve(benchmark::State& state) {
  const auto strength = static_cast<std::uint8_t>(state.range(0));
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    const Bytes msg = random_bytes(48, nonce++);
    benchmark::DoNotOptimize(solve_puzzle(view(msg), strength));
  }
}
BENCHMARK(BM_PuzzleSolve)->Arg(8)->Arg(12);

void BM_PuzzleVerify(benchmark::State& state) {
  const Bytes msg = random_bytes(48, 12);
  const auto sol = solve_puzzle(view(msg), 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_puzzle(view(msg), sol));
  }
}
BENCHMARK(BM_PuzzleVerify);

void BM_Sha256Kernel(benchmark::State& state, const std::string& kernel_name,
                     std::size_t len) {
  if (!sha256_set_kernel(kernel_name)) {
    state.SkipWithError("kernel unavailable on this CPU");
    return;
  }
  const Bytes data = random_bytes(len, 21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(view(data)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
  sha256_set_kernel("auto");
}

void register_kernel_benchmarks() {
  for (const auto& name : sha256_available_kernels()) {
    for (std::size_t len : {64u, 1024u}) {
      const std::string bench_name =
          "BM_Sha256Kernel/kernel=" + name + "/len=" + std::to_string(len);
      benchmark::RegisterBenchmark(
          bench_name.c_str(), [name, len](benchmark::State& s) {
            BM_Sha256Kernel(s, name, len);
          });
    }
  }
}

// ---------------------------------------------------------------------------
// Self-timed JSON sweep: kernels x message sizes x batch widths
//   -> BENCH_micro_crypto.json
// ---------------------------------------------------------------------------

struct SweepResult {
  std::string name;
  double mb_per_s;
  double ns_per_op;
};

/// Times fn (which processes `bytes` payload bytes per call): three
/// repetitions of ~150 ms each after a calibration warmup, keeping the
/// fastest — the standard defense against scheduler/steal-time noise on
/// shared CI machines. Returns {MB/s, ns/op}.
template <typename Fn>
SweepResult time_op(const std::string& name, std::size_t bytes, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  std::size_t iters = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (elapsed > 0.02 || iters > (1u << 24)) break;
    iters *= 4;
  }
  double best_ns_per_op = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    std::size_t done = 0;
    double elapsed = 0;
    do {
      for (std::size_t i = 0; i < iters; ++i) fn();
      done += iters;
      elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
    } while (elapsed < 0.15);
    const double ns_per_op = elapsed * 1e9 / static_cast<double>(done);
    if (rep == 0 || ns_per_op < best_ns_per_op) best_ns_per_op = ns_per_op;
  }
  const double mb_per_s = static_cast<double>(bytes) * 1e3 / best_ns_per_op;
  return {name, mb_per_s, best_ns_per_op};
}

std::vector<SweepResult> run_sweep() {
  std::vector<SweepResult> results;

  // One-shot digest throughput per single-stream kernel x message size:
  // 32 B Merkle-node-scale preimages, 64 B packet-hash-scale preimages,
  // then bulk sizes where the compression loop dominates padding.
  for (const auto& name : sha256_available_kernels()) {
    if (!sha256_set_kernel(name)) continue;
    for (std::size_t len : {32u, 64u, 256u, 1024u, 16384u}) {
      const Bytes msg = random_bytes(len, 31);
      results.push_back(time_op(
          "sha256/kernel=" + name + "/len=" + std::to_string(len), len, [&] {
            benchmark::DoNotOptimize(Sha256::hash(view(msg)));
          }));
    }
  }
  sha256_set_kernel("auto");

  // Raw block compression, identical total work (8 blocks): single-stream
  // kernels chew 8 sequential blocks of one message; batch kernels chew 8
  // independent one-block lanes. This isolates the kernel from padding and
  // buffer management.
  {
    const Bytes data = random_bytes(8 * 64, 41);
    for (const auto& name : sha256_available_kernels()) {
      const Sha256Kernel* kernel = sha256_find_kernel(name);
      std::uint32_t state[8];
      std::memcpy(state, kSha256Init, sizeof(state));
      results.push_back(
          time_op("sha256_compress/kernel=" + name + "/blocks=8", 8 * 64,
                  [&] {
                    kernel->compress(state, data.data(), 8);
                    benchmark::DoNotOptimize(state);
                  }));
    }
    for (const auto& name : sha256_available_batch_kernels()) {
      const Sha256BatchKernel* kernel = sha256_find_batch_kernel(name);
      std::uint32_t states[8 * 8];
      const std::uint8_t* ptrs[8];
      for (std::size_t i = 0; i < 8; ++i) {
        std::memcpy(states + 8 * i, kSha256Init, sizeof(kSha256Init));
        ptrs[i] = data.data() + 64 * i;
      }
      results.push_back(
          time_op("sha256_compress_batch/kernel=" + name + "/count=8",
                  8 * 64, [&] {
                    kernel->compress_batch(states, ptrs, 8);
                    benchmark::DoNotOptimize(states);
                  }));
    }
  }

  // End-to-end hash_batch across batch widths (64 B messages — the packet
  // preimage scale) under the auto-selected kernels.
  for (std::size_t width : {4u, 8u, 16u, 48u}) {
    std::vector<Bytes> msgs;
    std::vector<ByteView> views;
    for (std::size_t i = 0; i < width; ++i) {
      msgs.push_back(random_bytes(64, 51 + i));
    }
    for (const auto& m : msgs) views.push_back(view(m));
    std::vector<Sha256Digest> out(width);
    results.push_back(time_op(
        "hash_batch/width=" + std::to_string(width) + "/len=64", width * 64,
        [&] {
          hash_batch(views.data(), width, out.data());
          benchmark::DoNotOptimize(out.data());
        }));
  }

  // The two hot paths the batch layer serves, batch vs pinned-scalar:
  // hashing one page's worth of packet preimages (48 x 77 B) and building
  // the page-0 Merkle tree (64 x 72 B leaves).
  {
    std::vector<Bytes> preimages;
    std::vector<ByteView> views;
    for (std::size_t i = 0; i < 48; ++i) {
      preimages.push_back(random_bytes(77, 61 + i));
    }
    for (const auto& m : preimages) views.push_back(view(m));
    std::vector<PacketHash> out(48);
    std::vector<Bytes> leaves;
    for (std::size_t i = 0; i < 64; ++i) {
      leaves.push_back(random_bytes(72, 71 + i));
    }
    for (const char* mode : {"batch", "scalar"}) {
      // "ref" pins the scalar oracle and disables the batch path; "auto"
      // restores CPUID selection.
      sha256_set_kernel(std::string(mode) == "scalar" ? "ref" : "auto");
      results.push_back(time_op(
          std::string("packet_hash_batch/width=48/mode=") + mode, 48 * 77,
          [&] {
            packet_hash_batch(views.data(), 48, out.data());
            benchmark::DoNotOptimize(out.data());
          }));
      results.push_back(time_op(
          std::string("merkle_build/leaves=64/mode=") + mode, 64 * 72, [&] {
            benchmark::DoNotOptimize(MerkleTree::build(leaves));
          }));
    }
    sha256_set_kernel("auto");
  }
  return results;
}

/// Speedup rows: the fastest available kernel vs the scalar reference
/// oracle — the acceptance metric this bench exists to demonstrate.
/// "Fastest" is empirical (best measured MB/s), not positional, so one
/// noisy measurement window cannot misreport the ISA ranking.
void append_speedups(std::vector<SweepResult>& results) {
  auto find = [&](const std::string& want) -> const SweepResult* {
    for (const auto& r : results) {
      if (r.name == want) return &r;
    }
    return nullptr;
  };

  // One-shot digest speedup at the packet-preimage scale and in bulk.
  for (std::size_t len : {64u, 16384u}) {
    const std::string suffix = "/len=" + std::to_string(len);
    const SweepResult* ref = find("sha256/kernel=ref" + suffix);
    if (ref == nullptr || ref->mb_per_s <= 0) continue;
    const SweepResult* best = nullptr;
    std::string best_name;
    for (const auto& kernel : sha256_available_kernels()) {
      if (kernel == "ref") continue;
      const SweepResult* r = find("sha256/kernel=" + kernel + suffix);
      if (r != nullptr && (best == nullptr || r->mb_per_s > best->mb_per_s)) {
        best = r;
        best_name = kernel;
      }
    }
    if (best == nullptr) continue;
    results.push_back({"sha256/speedup/" + best_name + "_vs_ref" + suffix,
                       best->mb_per_s / ref->mb_per_s, 0.0});
  }

  // Block-compression speedup: best single or batch kernel vs ref, same
  // 8-block workload.
  {
    const SweepResult* ref = find("sha256_compress/kernel=ref/blocks=8");
    const SweepResult* best = nullptr;
    std::string best_name;
    for (const auto& kernel : sha256_available_kernels()) {
      if (kernel == "ref") continue;
      const SweepResult* r =
          find("sha256_compress/kernel=" + kernel + "/blocks=8");
      if (r != nullptr && (best == nullptr || r->mb_per_s > best->mb_per_s)) {
        best = r;
        best_name = kernel;
      }
    }
    for (const auto& kernel : sha256_available_batch_kernels()) {
      const SweepResult* r =
          find("sha256_compress_batch/kernel=" + kernel + "/count=8");
      if (r != nullptr && (best == nullptr || r->mb_per_s > best->mb_per_s)) {
        best = r;
        best_name = kernel;
      }
    }
    if (ref != nullptr && ref->mb_per_s > 0 && best != nullptr) {
      results.push_back({"sha256_compress/speedup/" + best_name + "_vs_ref",
                         best->mb_per_s / ref->mb_per_s, 0.0});
    }
  }

  // End-to-end hot paths, batch vs pinned scalar.
  for (const char* op : {"packet_hash_batch/width=48", "merkle_build/leaves=64"}) {
    const SweepResult* scalar = find(std::string(op) + "/mode=scalar");
    const SweepResult* batch = find(std::string(op) + "/mode=batch");
    if (scalar == nullptr || batch == nullptr || scalar->mb_per_s <= 0)
      continue;
    results.push_back({std::string(op) + "/speedup/batch_vs_scalar",
                       batch->mb_per_s / scalar->mb_per_s, 0.0});
  }
}

void write_json(const std::vector<SweepResult>& results,
                const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "could not open " << path << " for writing\n";
    return;
  }
  const Sha256BatchKernel* batch = sha256_batch_kernel();
  out << "{\n  \"benchmark\": \"bench_micro_crypto\",\n"
      << "  \"provenance\": " << core::provenance_json("  ") << ",\n"
      << "  \"active_kernel\": \"" << sha256_kernel().name << "\",\n"
      << "  \"active_batch_kernel\": \""
      << (batch != nullptr ? batch->name : "none") << "\",\n"
      << "  \"kernels\": [";
  const auto names = sha256_available_kernels();
  for (std::size_t i = 0; i < names.size(); ++i)
    out << (i ? ", " : "") << '"' << names[i] << '"';
  out << "],\n  \"batch_kernels\": [";
  const auto batch_names = sha256_available_batch_kernels();
  for (std::size_t i = 0; i < batch_names.size(); ++i)
    out << (i ? ", " : "") << '"' << batch_names[i] << '"';
  out << "],\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", ";
    if (r.name.find("/speedup/") != std::string::npos) {
      out << "\"speedup\": " << r.mb_per_s;
    } else {
      out << "\"mb_per_s\": " << r.mb_per_s
          << ", \"ns_per_op\": " << r.ns_per_op;
    }
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << results.size() << " sweep results to " << path
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  register_kernel_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const char* env = std::getenv("LRS_BENCH_JSON");
  const std::string path =
      env != nullptr && env[0] != '\0' ? env : "BENCH_micro_crypto.json";
  if (path == "none") return 0;
  auto results = run_sweep();
  append_speedups(results);
  write_json(results, path);
  return 0;
}
