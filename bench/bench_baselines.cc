// The design-space matrix the paper's introduction frames (§I): before
// LR-Seluge, schemes were EITHER loss-resilient OR attack-resilient.
//
//                       |  not loss-resilient  |  loss-resilient
//   ----------------------------------------------------------------
//   not attack-resilient|  Deluge              |  Rateless Deluge
//   attack-resilient    |  Seluge              |  LR-Seluge
//
// This harness disseminates the same 20 KB image with all five schemes
// across loss rates and reports the paper's metrics plus the security
// column (are packets authenticated on arrival?). Expected shape:
// Rateless Deluge and LR-Seluge track each other on loss resilience
// (rateless slightly ahead — it never runs out of fresh packets and
// carries no hash overhead), Seluge and Deluge degrade steeply, and only
// the right column of the bottom row survives the attack benches.
#include "bench/common.h"

namespace lrs::bench {
namespace {

void run() {
  Table t({"p", "scheme", "secure", "data_pkts", "snack_pkts",
           "total_bytes", "latency_s"});
  for (double p : {0.0, 0.1, 0.2, 0.3}) {
    for (auto scheme :
         {core::Scheme::kDeluge, core::Scheme::kRatelessDeluge,
          core::Scheme::kSluice, core::Scheme::kSeluge,
          core::Scheme::kLrSeluge}) {
      auto cfg = paper_config(scheme);
      cfg.loss_p = p;
      const auto r = run_experiment_avg(cfg, 3);
      const char* secure =
          scheme == core::Scheme::kSeluge ||
                  scheme == core::Scheme::kLrSeluge
              ? "yes"
              : (scheme == core::Scheme::kSluice ? "integrity-only" : "no");
      t.add_row({format_num(p, 2), core::scheme_name(scheme), secure,
                 format_num(static_cast<double>(r.data_packets)),
                 format_num(static_cast<double>(r.snack_packets)),
                 format_num(static_cast<double>(r.total_bytes)),
                 format_num(r.latency_s, 1)});
    }
  }
  print_table(
      "Baseline matrix: all five schemes (one-hop, N=20, 20 KB, 3 seeds)", t);
}

}  // namespace
}  // namespace lrs::bench

int main() {
  lrs::bench::run();
  return 0;
}
