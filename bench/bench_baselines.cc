// The design-space matrix the paper's introduction frames (§I): before
// LR-Seluge, schemes were EITHER loss-resilient OR attack-resilient.
//
//                       |  not loss-resilient  |  loss-resilient
//   ----------------------------------------------------------------
//   not attack-resilient|  Deluge              |  Rateless Deluge
//   attack-resilient    |  Seluge              |  LR-Seluge
//
// This harness disseminates the same 20 KB image with all five schemes
// across loss rates and reports the paper's metrics plus the security
// column (are packets authenticated on arrival?). Expected shape:
// Rateless Deluge and LR-Seluge track each other on loss resilience
// (rateless slightly ahead — it never runs out of fresh packets and
// carries no hash overhead), Seluge and Deluge degrade steeply, and only
// the right column of the bottom row survives the attack benches.
#include "bench/common.h"

namespace lrs::bench {
namespace {

void run(const BenchOptions& opt) {
  const std::vector<double> losses =
      opt.quick ? std::vector<double>{0.2}
                : std::vector<double>{0.0, 0.1, 0.2, 0.3};
  std::vector<core::ExperimentConfig> configs;
  std::vector<std::vector<std::string>> prefixes;
  for (double p : losses) {
    for (auto scheme :
         {core::Scheme::kDeluge, core::Scheme::kRatelessDeluge,
          core::Scheme::kSluice, core::Scheme::kSeluge,
          core::Scheme::kLrSeluge}) {
      auto cfg = paper_config(scheme);
      cfg.loss_p = p;
      const char* secure =
          scheme == core::Scheme::kSeluge ||
                  scheme == core::Scheme::kLrSeluge
              ? "yes"
              : (scheme == core::Scheme::kSluice ? "integrity-only" : "no");
      configs.push_back(cfg);
      prefixes.push_back(
          {format_num(p, 2), core::scheme_name(scheme), secure});
    }
  }
  const auto results = run_sweep(configs, opt);

  Table t({"p", "scheme", "secure", "data_pkts", "snack_pkts",
           "total_bytes", "recv_bytes", "latency_s", "completed"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::vector<std::string> row = prefixes[i];
    row.push_back(format_num(static_cast<double>(r.data_packets)));
    row.push_back(format_num(static_cast<double>(r.snack_packets)));
    row.push_back(format_num(static_cast<double>(r.total_bytes)));
    row.push_back(format_num(static_cast<double>(r.received_bytes)));
    row.push_back(format_num(r.latency_s, 1));
    row.push_back(r.all_complete ? "true" : "false");
    t.add_row(std::move(row));
  }
  print_table("Baseline matrix: all five schemes (one-hop, N=20, 20 KB, " +
                  std::to_string(opt.repeats) + " seeds)",
              t);
  write_bench_json("baselines", t, sweep_extras(opt));
}

}  // namespace
}  // namespace lrs::bench

int main(int argc, char** argv) {
  lrs::bench::run(lrs::bench::parse_bench_options(argc, argv, 3));
  return 0;
}
