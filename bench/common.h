// Shared plumbing for the figure/table harnesses: each binary regenerates
// one table or figure of the paper's evaluation (§V-§VI), printing an
// aligned human-readable table plus machine-readable CSV.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "util/csv.h"

namespace lrs::bench {

/// Paper-scale defaults: 20 KB image, k = 32, n = 48 (rate 1.5), 64-byte
/// payloads, N = 20 receivers, Deluge Trickle constants.
inline core::ExperimentConfig paper_config(core::Scheme scheme) {
  core::ExperimentConfig c;
  c.scheme = scheme;
  c.params.payload_size = 64;
  c.params.k = 32;
  c.params.n = 48;
  c.params.k0 = 8;
  c.params.n0 = 16;
  c.params.puzzle_strength = 8;
  c.image_size = 20 * 1024;
  c.receivers = 20;
  c.seed = 1;
  c.timing.trickle.tau_low = 2 * sim::kSecond;
  c.timing.trickle.tau_high = 60 * sim::kSecond;
  return c;
}

/// The paper's five metrics as table cells.
inline std::vector<std::string> metric_cells(
    const core::ExperimentResult& r) {
  return {format_num(static_cast<double>(r.data_packets)),
          format_num(static_cast<double>(r.snack_packets)),
          format_num(static_cast<double>(r.adv_packets)),
          format_num(static_cast<double>(r.total_bytes)),
          format_num(r.latency_s, 1)};
}

inline const std::vector<std::string> kMetricHeader = {
    "data_pkts", "snack_pkts", "adv_pkts", "total_bytes", "latency_s"};

inline void print_table(const std::string& title, const Table& table) {
  std::cout << "\n== " << title << " ==\n";
  table.print(std::cout);
  std::cout << "\n-- CSV --\n";
  table.print_csv(std::cout);
  std::cout.flush();
}

}  // namespace lrs::bench
