// Shared plumbing for the figure/table harnesses: each binary regenerates
// one table or figure of the paper's evaluation (§V-§VI), printing an
// aligned human-readable table plus machine-readable CSV.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/run_trials.h"
#include "util/args.h"
#include "util/csv.h"

namespace lrs::bench {

/// Flags shared by every figure/table harness:
///   --repeats=R  seeds averaged per sweep point (default: the harness's
///                historical seed count; --quick forces 1 unless given)
///   --jobs=J     worker threads for the trial runner (default: LRS_JOBS
///                env or hardware concurrency)
///   --quick      shrink the sweep to a smoke-test subset — used by CI
struct BenchOptions {
  std::size_t repeats = 3;
  std::size_t jobs = 0;  // 0 = core::default_jobs()
  bool quick = false;
};

inline BenchOptions parse_bench_options(int argc, const char* const* argv,
                                        std::size_t default_repeats) {
  Args args(argc, argv);
  BenchOptions opt;
  opt.quick = args.get_bool("quick", false);
  const long repeats =
      args.get_int("repeats",
                   static_cast<long>(opt.quick ? 1 : default_repeats));
  const long jobs = args.get_int("jobs", 0);
  bool bad = repeats < 1 || jobs < 0;
  for (const auto& e : args.errors()) {
    std::cerr << "error: " << e << "\n";
    bad = true;
  }
  for (const auto& u : args.unknown()) {
    std::cerr << "error: unknown flag " << u << "\n";
    bad = true;
  }
  if (bad) {
    std::cerr << "usage: " << argv[0]
              << " [--repeats=R] [--jobs=J] [--quick]\n";
    std::exit(2);
  }
  opt.repeats = static_cast<std::size_t>(repeats);
  opt.jobs = static_cast<std::size_t>(jobs);
  return opt;
}

/// Runs every config in the sweep through the parallel trial runner;
/// result i averages opt.repeats seeds of configs[i].
inline std::vector<core::ExperimentResult> run_sweep(
    const std::vector<core::ExperimentConfig>& configs,
    const BenchOptions& opt) {
  return core::run_experiments_avg(configs, opt.repeats, opt.jobs);
}

/// Paper-scale defaults: 20 KB image, k = 32, n = 48 (rate 1.5), 64-byte
/// payloads, N = 20 receivers, Deluge Trickle constants.
inline core::ExperimentConfig paper_config(core::Scheme scheme) {
  core::ExperimentConfig c;
  c.scheme = scheme;
  c.params.payload_size = 64;
  c.params.k = 32;
  c.params.n = 48;
  c.params.k0 = 8;
  c.params.n0 = 16;
  c.params.puzzle_strength = 8;
  c.image_size = 20 * 1024;
  c.receivers = 20;
  c.seed = 1;
  c.timing.trickle.tau_low = 2 * sim::kSecond;
  c.timing.trickle.tau_high = 60 * sim::kSecond;
  return c;
}

/// The paper's five metrics as table cells.
inline std::vector<std::string> metric_cells(
    const core::ExperimentResult& r) {
  return {format_num(static_cast<double>(r.data_packets)),
          format_num(static_cast<double>(r.snack_packets)),
          format_num(static_cast<double>(r.adv_packets)),
          format_num(static_cast<double>(r.total_bytes)),
          format_num(r.latency_s, 1)};
}

inline const std::vector<std::string> kMetricHeader = {
    "data_pkts", "snack_pkts", "adv_pkts", "total_bytes", "latency_s"};

inline void print_table(const std::string& title, const Table& table) {
  std::cout << "\n== " << title << " ==\n";
  table.print(std::cout);
  std::cout << "\n-- CSV --\n";
  table.print_csv(std::cout);
  std::cout.flush();
}

}  // namespace lrs::bench
