// Shared plumbing for the figure/table harnesses: each binary regenerates
// one table or figure of the paper's evaluation (§V-§VI), printing an
// aligned human-readable table plus machine-readable CSV, and writing a
// provenance-stamped BENCH_<name>.json artifact for cross-PR comparison.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "core/provenance.h"
#include "core/run_trials.h"
#include "sim/scenario/scenario.h"
#include "sim/stats/stats.h"
#include "util/args.h"
#include "util/csv.h"

namespace lrs::bench {

/// Flags shared by every figure/table harness:
///   --repeats=R    seeds averaged per sweep point (default: the harness's
///                  historical seed count; --quick forces 1 unless given)
///   --jobs=J       worker threads for the trial runner (default: LRS_JOBS
///                  env or hardware concurrency)
///   --quick        shrink the sweep to a smoke-test subset — used by CI
///   --trace=P      record the structured event trace of the first trial
///                  to P (JSONL) plus a Chrome-trace twin at
///                  P-with-extension-.chrome.json
///   --timeseries=P write the sampled progress counters of the first trial
///                  to P (JSON)
///   --trace-all    trace every (config, trial) cell of the sweep to
///                  derived ".cN.tM" paths instead of only the first
///   --scenario=F   replace every sweep point's deployment environment
///                  (topology, channel, fault plan and node schedules) with
///                  the one declared in scenario file F (scenarios/*.scn,
///                  docs/scenarios.md) — the harness keeps sweeping its own
///                  scheme/parameter axis on the scenario's network
///   --metrics=M    enable the runtime metrics registry (sim/stats) and
///                  write its JSON export to M at exit ("-" = stdout);
///                  deterministic counters stay byte-identical across
///                  LRS_JOBS settings, timing columns do not
///   --metrics-heartbeat=S  with --metrics: print a progress line to
///                  stderr every S seconds (long-run liveness signal)
struct BenchOptions {
  std::size_t repeats = 3;
  std::size_t jobs = 0;  // 0 = core::default_jobs()
  bool quick = false;
  std::string trace;       // JSONL event-log path; empty = no trace
  std::string timeseries;  // progress time-series path; empty = none
  bool trace_all = false;
  std::string scenario;    // .scn file overriding the deployment; empty = none
  std::string metrics;     // metrics JSON export path; empty = disabled
  double metrics_heartbeat = 0.0;  // stderr heartbeat period, 0 = off
};

/// "t.jsonl" -> "t.chrome.json" (tag appended when there is no extension).
inline std::string chrome_trace_path(const std::string& events_path) {
  const auto slash = events_path.find_last_of('/');
  const auto dot = events_path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return events_path + ".chrome.json";
  }
  return events_path.substr(0, dot) + ".chrome.json";
}

/// The sim-layer export destinations encoded by the --trace/--timeseries
/// flags. Empty (disabled — the null-recorder fast path) when neither flag
/// was given.
inline sim::TraceExportConfig trace_config(const BenchOptions& opt) {
  sim::TraceExportConfig t;
  t.events_path = opt.trace;
  if (!opt.trace.empty()) t.chrome_path = chrome_trace_path(opt.trace);
  t.timeseries_path = opt.timeseries;
  t.all_trials = opt.trace_all;
  return t;
}

/// Arms the metrics registry per --metrics/--metrics-heartbeat: enables
/// recording, zeroes any registration-time residue, optionally starts the
/// heartbeat thread, and registers an atexit export so every exit path
/// (including std::exit from a later usage error) writes the file. Safe to
/// call with an empty path (no-op) and from raw-Args harnesses.
inline void arm_metrics_export(const std::string& path,
                               double heartbeat_period_s) {
  if (path.empty()) return;
  static std::string g_path;  // handler state: atexit takes no capture
  g_path = path;
  stats::Registry::instance().reset_values();
  stats::set_enabled(true);
  if (heartbeat_period_s > 0) stats::start_heartbeat(heartbeat_period_s);
  std::atexit([] {
    stats::write_metrics_json(g_path, core::provenance_json("  "));
  });
}

inline BenchOptions parse_bench_options(int argc, const char* const* argv,
                                        std::size_t default_repeats) {
  Args args(argc, argv);
  BenchOptions opt;
  opt.quick = args.get_bool("quick", false);
  const long repeats =
      args.get_int("repeats",
                   static_cast<long>(opt.quick ? 1 : default_repeats));
  const long jobs = args.get_int("jobs", 0);
  opt.trace = args.get("trace", "");
  opt.timeseries = args.get("timeseries", "");
  opt.trace_all = args.get_bool("trace-all", false);
  opt.scenario = args.get("scenario", "");
  opt.metrics = args.get("metrics", "");
  opt.metrics_heartbeat = args.get_double("metrics-heartbeat", 0.0);
  bool bad = repeats < 1 || jobs < 0;
  if (opt.trace_all && opt.trace.empty() && opt.timeseries.empty()) {
    std::cerr << "error: --trace-all needs --trace and/or --timeseries\n";
    bad = true;
  }
  if (opt.metrics_heartbeat < 0 ||
      (opt.metrics_heartbeat > 0 && opt.metrics.empty())) {
    std::cerr << "error: --metrics-heartbeat needs --metrics=FILE and a"
                 " positive period\n";
    bad = true;
  }
  for (const auto& e : args.errors()) {
    std::cerr << "error: " << e << "\n";
    bad = true;
  }
  for (const auto& u : args.unknown()) {
    std::cerr << "error: unknown flag " << u << "\n";
    bad = true;
  }
  if (bad) {
    std::cerr << "usage: " << argv[0]
              << " [--repeats=R] [--jobs=J] [--quick] [--trace=T.jsonl]"
                 " [--timeseries=TS.json] [--trace-all]"
                 " [--scenario=F.scn] [--metrics=M.json]"
                 " [--metrics-heartbeat=S]\n";
    std::exit(2);
  }
  opt.repeats = static_cast<std::size_t>(repeats);
  opt.jobs = static_cast<std::size_t>(jobs);
  arm_metrics_export(opt.metrics, opt.metrics_heartbeat);
  return opt;
}

/// Transplants the scenario's deployment environment — topology spec,
/// channel/loss model, fault plan and node schedules — into `config`,
/// leaving the harness's scheme, coding geometry and timing untouched.
inline void apply_scenario_environment(core::ExperimentConfig& config,
                                       const scenario::Scenario& s) {
  const core::ExperimentConfig env = scenario::scenario_config(s);
  config.topo = env.topo;
  config.topo_spec = env.topo_spec;
  config.link = env.link;
  config.loss_p = env.loss_p;
  config.gilbert_elliott = env.gilbert_elliott;
  config.ge = env.ge;
  config.per_node_loss = env.per_node_loss;
  config.faults = env.faults;
}

/// Loads opt.scenario (when set) or exits with the parse error — harness
/// startup, where a bad file should fail fast with the offending line.
inline std::optional<scenario::Scenario> load_bench_scenario(
    const BenchOptions& opt) {
  if (opt.scenario.empty()) return std::nullopt;
  std::string error;
  auto s = scenario::load_scenario_file(opt.scenario, &error);
  if (!s) {
    std::cerr << "error: " << error << "\n";
    std::exit(2);
  }
  return s;
}

/// Runs every config in the sweep through the parallel trial runner;
/// result i averages opt.repeats seeds of configs[i]. Trace flags apply to
/// the whole sweep: cell (config 0, trial 0) writes the exact requested
/// paths, other cells only under --trace-all (see sim::trace_for_trial).
/// Under --scenario=F.scn every sweep point runs on F's deployment.
inline std::vector<core::ExperimentResult> run_sweep(
    std::vector<core::ExperimentConfig> configs, const BenchOptions& opt) {
  if (const auto s = load_bench_scenario(opt)) {
    for (auto& c : configs) apply_scenario_environment(c, *s);
  }
  const sim::TraceExportConfig trace = trace_config(opt);
  for (auto& c : configs) c.trace = trace;
  return core::run_experiments_avg(configs, opt.repeats, opt.jobs);
}

/// Paper-scale defaults: 20 KB image, k = 32, n = 48 (rate 1.5), 64-byte
/// payloads, N = 20 receivers, Deluge Trickle constants.
inline core::ExperimentConfig paper_config(core::Scheme scheme) {
  core::ExperimentConfig c;
  c.scheme = scheme;
  c.params.payload_size = 64;
  c.params.k = 32;
  c.params.n = 48;
  c.params.k0 = 8;
  c.params.n0 = 16;
  c.params.puzzle_strength = 8;
  c.image_size = 20 * 1024;
  c.receivers = 20;
  c.seed = 1;
  c.timing.trickle.tau_low = 2 * sim::kSecond;
  c.timing.trickle.tau_high = 60 * sim::kSecond;
  return c;
}

/// The paper's five metrics — plus received bytes (rx-side goodput) and an
/// explicit completion flag, so an incomplete run is visible instead of
/// silently reporting the time-limit as latency.
inline std::vector<std::string> metric_cells(
    const core::ExperimentResult& r) {
  return {format_num(static_cast<double>(r.data_packets)),
          format_num(static_cast<double>(r.snack_packets)),
          format_num(static_cast<double>(r.adv_packets)),
          format_num(static_cast<double>(r.total_bytes)),
          format_num(static_cast<double>(r.received_bytes)),
          format_num(r.latency_s, 1),
          r.all_complete ? "true" : "false"};
}

inline const std::vector<std::string> kMetricHeader = {
    "data_pkts", "snack_pkts", "adv_pkts",  "total_bytes",
    "recv_bytes", "latency_s",  "completed"};

inline void print_table(const std::string& title, const Table& table) {
  std::cout << "\n== " << title << " ==\n";
  table.print(std::cout);
  std::cout << "\n-- CSV --\n";
  table.print_csv(std::cout);
  std::cout.flush();
}

/// True when a CSV cell can be emitted as a bare JSON token (number or
/// boolean) rather than a quoted string.
inline bool json_bare_cell(const std::string& s) {
  if (s == "true" || s == "false") return true;
  if (s.empty()) return false;
  std::size_t i = s[0] == '-' ? 1 : 0;
  if (i >= s.size()) return false;
  bool digit = false, dot = false;
  for (; i < s.size(); ++i) {
    if (s[i] >= '0' && s[i] <= '9') {
      digit = true;
    } else if (s[i] == '.' && !dot) {
      dot = true;
    } else {
      return false;
    }
  }
  return digit;
}

/// Writes the harness result table as BENCH_<name>.json, stamped with the
/// run-provenance manifest (core/provenance.h) plus harness-level facts
/// (repeats, sweep shape). Honors the LRS_BENCH_JSON convention shared
/// with the microbenchmarks: a path overrides the default, "none" skips.
inline void write_bench_json(
    const std::string& name, const Table& table,
    const std::vector<std::pair<std::string, std::string>>& extra = {}) {
  const char* env = std::getenv("LRS_BENCH_JSON");
  const std::string path =
      env != nullptr && env[0] != '\0' ? env : "BENCH_" + name + ".json";
  if (path == "none") return;
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  out << "{\n  \"bench\": \"" << name << "\",\n";
  out << "  \"provenance\": " << core::provenance_json("  ", extra) << ",\n";
  out << "  \"columns\": [";
  const auto& header = table.header();
  for (std::size_t c = 0; c < header.size(); ++c) {
    out << (c ? ", " : "") << "\"" << header[c] << "\"";
  }
  out << "],\n  \"rows\": [\n";
  const auto& rows = table.row_data();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    out << "    [";
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      if (c) out << ", ";
      if (json_bare_cell(rows[r][c])) {
        out << rows[r][c];
      } else {
        out << "\"" << rows[r][c] << "\"";
      }
    }
    out << "]" << (r + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

/// Standard provenance extras for a sweep harness: seed averaging shape.
inline std::vector<std::pair<std::string, std::string>> sweep_extras(
    const BenchOptions& opt, std::uint64_t seed_base = 1) {
  return {{"seed_base", std::to_string(seed_base)},
          {"repeats", std::to_string(opt.repeats)},
          {"quick", opt.quick ? "true" : "false"}};
}

}  // namespace lrs::bench
